"""The simulated cluster: ``s`` servers, a network, and an implicit global matrix.

A :class:`LocalCluster` owns the local matrices ``A^1 ... A^s`` and the
entrywise function ``f`` that defines the implicit global matrix
``A_{ij} = f(sum_t A^t_{ij})``.  Protocols interact with the cluster through
two kinds of operations:

* **accounted operations** (``aggregate_rows``, ``aggregate_entries``,
  ``gather_from_servers``) that move data to the Central Processor and are
  charged to the cluster's :class:`~repro.distributed.network.Network`;
* **evaluation-only operations** (``materialize_global``) that construct the
  full global matrix centrally so tests and experiments can measure the true
  approximation error.  These are never available to a real protocol and are
  deliberately *not* charged to the network.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.distributed.network import Network
from repro.distributed.server import LocalMatrix, Server

#: An entrywise function applied to numpy arrays (vectorised).
EntrywiseCallable = Callable[[np.ndarray], np.ndarray]


def _identity(x: np.ndarray) -> np.ndarray:
    return x


class LocalCluster:
    """In-process simulation of the generalized partition model.

    Parameters
    ----------
    local_matrices:
        Sequence of ``s`` local matrices, all of the same ``n x d`` shape
        (dense ndarrays or scipy sparse matrices).
    function:
        Vectorised entrywise function ``f`` defining the global matrix.
        Defaults to the identity.  Objects from :mod:`repro.functions` are
        callables and can be passed directly.
    network:
        Existing :class:`Network` to charge communication to; a fresh one is
        created when omitted.  Sharing a network across derived clusters
        (see :meth:`transform_locally`) keeps a single running total.
    name:
        Optional label used in reports.
    """

    def __init__(
        self,
        local_matrices: Sequence[LocalMatrix],
        function: Optional[EntrywiseCallable] = None,
        *,
        network: Optional[Network] = None,
        name: str = "",
        keep_messages: bool = False,
    ) -> None:
        from repro.core.errors import DimensionMismatchError

        if len(local_matrices) < 1:
            raise ValueError("a cluster needs at least one server")
        shapes = []
        for local in local_matrices:
            if not sparse.issparse(local):
                local = np.asarray(local)
            if local.ndim != 2:
                raise ValueError("every local matrix must be 2-dimensional")
            shapes.append(tuple(local.shape))
        if len(set(shapes)) != 1:
            mismatched = [
                f"server {t}: {shape}"
                for t, shape in enumerate(shapes)
                if shape != shapes[0]
            ]
            raise DimensionMismatchError(
                "all local matrices must share one shape, got "
                f"{shapes[0]} on server 0 but " + ", ".join(mismatched)
            )
        self._servers: List[Server] = [
            Server(t, local) for t, local in enumerate(local_matrices)
        ]
        self._shape: Tuple[int, int] = self._servers[0].shape
        self._function: EntrywiseCallable = function if function is not None else _identity
        self._network = network if network is not None else Network(
            len(self._servers), keep_messages=keep_messages
        )
        if self._network.num_servers != len(self._servers):
            raise DimensionMismatchError(
                "network was created for a different number of servers: "
                f"{self._network.num_servers} != {len(self._servers)}"
            )
        self._name = name
        self._cached_sum: Optional[np.ndarray] = None
        self._cached_global: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_servers(self) -> int:
        """Number of servers ``s`` (server 0 is the Central Processor)."""
        return len(self._servers)

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape ``(n, d)`` of every local matrix and of the global matrix."""
        return self._shape

    @property
    def num_rows(self) -> int:
        """Number of data points ``n``."""
        return self._shape[0]

    @property
    def num_columns(self) -> int:
        """Dimensionality ``d`` of each data point."""
        return self._shape[1]

    @property
    def servers(self) -> List[Server]:
        """The simulated servers (index 0 is the Central Processor)."""
        return self._servers

    @property
    def network(self) -> Network:
        """The accounting network shared by all protocol runs on this cluster."""
        return self._network

    @property
    def function(self) -> EntrywiseCallable:
        """The entrywise function ``f`` defining the implicit global matrix."""
        return self._function

    @property
    def name(self) -> str:
        """Human-readable label of the cluster/workload."""
        return self._name

    def total_input_words(self) -> int:
        """Sum of the local data sizes in words (denominator of the communication ratio)."""
        return sum(server.stored_words() for server in self._servers)

    # ------------------------------------------------------------------ #
    # accounted distributed operations
    # ------------------------------------------------------------------ #
    def gather_from_servers(
        self,
        compute_local: Callable[[Server], object],
        tag: str,
    ) -> List[object]:
        """Have every server compute a local payload and send it to the CP.

        ``compute_local`` runs locally (free); the resulting payloads are
        charged to the network, except the CP's own which never leaves the
        machine.  Returns the payloads indexed by server.
        """
        payloads = [compute_local(server) for server in self._servers]
        for t in range(1, self.num_servers):
            self._network.send(t, 0, payloads[t], tag=tag)
        return payloads

    def broadcast_from_coordinator(self, payload: object, tag: str) -> object:
        """Broadcast ``payload`` from the CP to all other servers (charged)."""
        return self._network.broadcast(0, payload, tag=tag)

    def aggregate_rows(
        self,
        indices: Sequence[int],
        *,
        tag: str = "gather_rows",
        apply_function: bool = True,
    ) -> np.ndarray:
        """Collect rows of the implicit global matrix at the Central Processor.

        Every worker sends its local rows for ``indices`` (``len(indices) * d``
        words each); the CP adds its own local rows for free, sums them and
        applies ``f`` entrywise (when ``apply_function``).

        Returns
        -------
        numpy.ndarray of shape ``(len(indices), d)``
        """
        idx = np.asarray(indices, dtype=int)
        if idx.ndim != 1:
            raise ValueError("indices must be one-dimensional")
        local_rows = self.gather_from_servers(
            lambda server: server.local_rows(idx), tag=tag
        )
        total = np.sum(local_rows, axis=0)
        if apply_function:
            return np.asarray(self._function(total), dtype=float)
        return np.asarray(total, dtype=float)

    def aggregate_entries(
        self,
        flat_indices: Sequence[int],
        *,
        tag: str = "gather_entries",
        apply_function: bool = True,
    ) -> np.ndarray:
        """Collect entries of the implicit global matrix (by flattened index) at the CP."""
        idx = np.asarray(flat_indices, dtype=int)
        if idx.ndim != 1:
            raise ValueError("flat_indices must be one-dimensional")
        local_values = self.gather_from_servers(
            lambda server: server.local_entries(idx), tag=tag
        )
        total = np.sum(local_values, axis=0)
        if apply_function:
            return np.asarray(self._function(total), dtype=float)
        return np.asarray(total, dtype=float)

    # ------------------------------------------------------------------ #
    # evaluation-only operations (never charged)
    # ------------------------------------------------------------------ #
    def materialize_sum(self) -> np.ndarray:
        """Return ``sum_t A^t`` as a dense matrix (evaluation only, cached).

        Sparse components are summed sparsely and densified once at the end,
        so a cluster of ``s`` sparse servers allocates one dense matrix
        instead of ``s``.
        """
        if self._cached_sum is None:
            total = np.zeros(self._shape, dtype=float)
            sparse_total = None
            for server in self._servers:
                local = server.local_matrix
                if sparse.issparse(local):
                    part = local.astype(float)
                    sparse_total = part if sparse_total is None else sparse_total + part
                else:
                    total += local
            if sparse_total is not None:
                total += np.asarray(sparse_total.todense(), dtype=float)
            self._cached_sum = total
        return self._cached_sum

    def materialize_global(self) -> np.ndarray:
        """Return the global matrix ``A = f(sum_t A^t)`` (evaluation only, cached).

        This centralises all data and is only legitimate for measuring the
        quality of a protocol's output; protocols must not call it.
        """
        if self._cached_global is None:
            self._cached_global = np.asarray(
                self._function(self.materialize_sum()), dtype=float
            )
        return self._cached_global

    # ------------------------------------------------------------------ #
    # derived clusters
    # ------------------------------------------------------------------ #
    def transform_locally(
        self,
        transform: Callable[[np.ndarray], np.ndarray],
        *,
        function: Optional[EntrywiseCallable] = None,
        name: str = "",
    ) -> "LocalCluster":
        """Return a new cluster whose servers applied ``transform`` locally.

        The new cluster shares this cluster's network so all communication is
        accumulated in one place.  This models application-specific local
        preprocessing, e.g. the softmax sampler where each server raises its
        entries to the ``p``-th power before the generic machinery runs.
        """
        transformed = [server.transform(transform).local_matrix for server in self._servers]
        return LocalCluster(
            transformed,
            function if function is not None else self._function,
            network=self._network,
            name=name or self._name,
        )

    def with_function(self, function: EntrywiseCallable, name: str = "") -> "LocalCluster":
        """Return a cluster over the same local data with a different entrywise ``f``."""
        return LocalCluster(
            [server.local_matrix for server in self._servers],
            function,
            network=self._network,
            name=name or self._name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LocalCluster(name={self._name!r}, servers={self.num_servers}, "
            f"shape={self._shape})"
        )
