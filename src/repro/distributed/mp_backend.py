"""Multiprocess execution of per-server local computations.

The paper's experiments "use multiple processes to simulate multiple
servers".  The in-process :class:`~repro.distributed.cluster.LocalCluster`
is sufficient (and much faster) for correctness and communication
accounting, but this module provides the same physical isolation when
wanted: each server's local computation runs in its own OS process, so no
shared memory can leak information between servers.

Because worker processes receive their inputs by pickling, tasks must be
*module-level callables* (no lambdas/closures); a few common tasks are
provided and arbitrary ones can be passed as long as they are picklable.

Example
-------
>>> from repro.distributed.mp_backend import MultiprocessBackend, local_row_norms_task
>>> backend = MultiprocessBackend(processes=4)
>>> per_server_norms = backend.map_servers(cluster, local_row_norms_task)
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.distributed.cluster import LocalCluster
from repro.distributed.server import LocalMatrix

try:  # shared-memory domain caches (used when the platform provides them)
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - shared_memory is stdlib on 3.8+
    _resource_tracker = None
    _shared_memory = None

#: A per-server task: receives the server's local matrix plus any extra
#: arguments and returns a picklable result.
ServerTask = Callable[..., Any]


# --------------------------------------------------------------------------- #
# predefined picklable tasks
# --------------------------------------------------------------------------- #
def local_row_norms_task(local_matrix: LocalMatrix) -> np.ndarray:
    """Squared Euclidean norms of the server's local rows."""
    if sparse.issparse(local_matrix):
        squared = local_matrix.multiply(local_matrix)
        return np.asarray(squared.sum(axis=1)).ravel()
    arr = np.asarray(local_matrix, dtype=float)
    return np.einsum("ij,ij->i", arr, arr)


def local_rows_task(local_matrix: LocalMatrix, indices: Sequence[int]) -> np.ndarray:
    """The server's local rows at ``indices`` as a dense block."""
    idx = np.asarray(indices, dtype=int)
    rows = local_matrix[idx]
    if sparse.issparse(rows):
        return np.asarray(rows.todense(), dtype=float)
    return np.asarray(rows, dtype=float)


def local_frobenius_task(local_matrix: LocalMatrix) -> float:
    """Squared Frobenius norm of the server's local matrix."""
    if sparse.issparse(local_matrix):
        return float(local_matrix.multiply(local_matrix).sum())
    arr = np.asarray(local_matrix, dtype=float)
    return float(np.sum(arr * arr))


def local_countsketch_task(
    local_matrix: LocalMatrix,
    depth: int,
    width: int,
    seed: int,
) -> np.ndarray:
    """CountSketch table of the server's flattened local matrix.

    The hash seed is shared (broadcast by the coordinator), so every server
    builds a compatible table; the coordinator merges them by addition.
    """
    from repro.sketch.countsketch import CountSketch

    if sparse.issparse(local_matrix):
        coo = local_matrix.tocoo()
        flat = coo.row.astype(np.int64) * local_matrix.shape[1] + coo.col.astype(np.int64)
        values = coo.data.astype(float)
    else:
        dense = np.asarray(local_matrix, dtype=float).ravel()
        flat = np.nonzero(dense)[0].astype(np.int64)
        values = dense[flat]
    domain = int(local_matrix.shape[0] * local_matrix.shape[1])
    sketch = CountSketch(depth, width, domain, seed=seed)
    return sketch.sketch(flat, values)


def batched_component_sketch_task(
    indices: np.ndarray,
    values: np.ndarray,
    assignment: np.ndarray,
    bucket_coeffs: np.ndarray,
    sign_coeffs: np.ndarray,
    num_buckets: int,
    depth: int,
    width: int,
) -> np.ndarray:
    """Worker-side batched CountSketch of one server's sparse component.

    Receives only what a real coordinator broadcasts -- the hash coefficient
    tensors -- plus the server's own data, and reproduces the cache-free
    fused kernel bit-for-bit (see
    :func:`repro.sketch.countsketch.batched_sketch_uncached`).
    """
    from repro.sketch.countsketch import batched_sketch_uncached

    if indices.size == 0:
        return np.zeros((num_buckets, depth, width), dtype=float)
    return batched_sketch_uncached(
        indices, values, assignment,
        bucket_coeffs, sign_coeffs, num_buckets, depth, width,
    )


# Worker-process cache of attached shared-memory segments, keyed by segment
# name.  Keeping the attachment (and its numpy view) alive across tasks is
# what lets every task of one repetition -- and the several tasks a worker
# serves when servers outnumber processes -- reuse one mapping of the
# coordinator's domain cache and per-server components instead of
# re-receiving megabytes of pickled arrays per task.
_WORKER_SHM_CACHE: dict = {}
_WORKER_SHM_CACHE_LIMIT = 16


def _attach_shared_array(name: str, shape: tuple, dtype_name: str) -> np.ndarray:
    """Return a read-view of the named shared segment (cached across tasks)."""
    cached = _WORKER_SHM_CACHE.get(name)
    if cached is not None:
        return cached[1]
    while len(_WORKER_SHM_CACHE) >= _WORKER_SHM_CACHE_LIMIT:
        oldest = next(iter(_WORKER_SHM_CACHE))
        old_shm, old_array = _WORKER_SHM_CACHE.pop(oldest)
        del old_array  # drop the buffer view before unmapping
        try:
            old_shm.close()
        except BufferError:  # pragma: no cover - a caller kept a view alive
            pass
    shm = _shared_memory.SharedMemory(name=name)
    if _resource_tracker is not None:
        try:
            import multiprocessing

            # Under spawn every child runs its own resource tracker, which
            # would log a spurious "leaked shared_memory" warning (and try to
            # unlink) for an attachment the creator manages deliberately --
            # unregister it.  Under fork the tracker process is shared with
            # the creator, whose own registration must stay in place.
            if multiprocessing.get_start_method(allow_none=True) not in (None, "fork"):
                _resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    array = np.ndarray(shape, dtype=np.dtype(dtype_name), buffer=shm.buf)
    _WORKER_SHM_CACHE[name] = (shm, array)
    return array


def domain_cache_range_task(
    bucket_coeffs: np.ndarray,
    sign_coeffs: np.ndarray,
    assign_slab: np.ndarray,
    start: int,
    stop: int,
    width: int,
    depth: int,
    domain: int,
    flat_name: str,
    sign_name: str,
    block: int,
) -> int:
    """Worker-side slab of a batched domain-cache build, written to shared memory.

    Runs the elementwise kernel
    :func:`repro.sketch.countsketch.build_domain_cache_range` over
    coordinates ``[start, stop)``, writing straight into the shared output
    arrays -- no result pickling, and the pages this worker writes are warm
    for its later sketch gathers.
    """
    from repro.sketch.countsketch import build_domain_cache_range

    flat_out = _attach_shared_array(flat_name, (domain, depth), "int64")
    sign_out = _attach_shared_array(sign_name, (domain, depth), "int8")
    build_domain_cache_range(
        bucket_coeffs,
        sign_coeffs,
        assign_slab,
        start,
        stop,
        width,
        flat_out,
        sign_out,
        block,
    )
    return stop - start


def batched_component_sketch_shared_task(
    idx_name: str,
    val_name: str,
    count: int,
    bucket_hash_coeffs: np.ndarray,
    flat_name: str,
    sign_name: str,
    domain: int,
    num_buckets: int,
    depth: int,
    width: int,
) -> np.ndarray:
    """Worker-side batched sketch served entirely from shared memory.

    The server's component (published once per vector) and the repetition's
    domain-hash cache (built slab-wise by the workers themselves) are both
    attached by name; the only per-task payload is the repetition's
    pairwise bucket-hash coefficients, which the worker evaluates over its
    own indices -- bit-for-bit equal to indexing the coordinator's
    domain-wide assignment.  Reproduces the cached
    :meth:`~repro.sketch.countsketch.BatchedCountSketch.sketch_assigned`
    path exactly.
    """
    table_words = depth * width
    tables = np.zeros(num_buckets * table_words, dtype=float)
    if count:
        from repro.sketch.hashing import range_reduce, stacked_polynomial_hash
        from repro.sketch.kernels import active_provider

        indices = _attach_shared_array(idx_name, (count,), "int64")
        values = _attach_shared_array(val_name, (count,), "float64")
        flat_cache = _attach_shared_array(flat_name, (domain, depth), "int64")
        sign_cache = _attach_shared_array(sign_name, (domain, depth), "int8")
        assignment = range_reduce(
            stacked_polynomial_hash(indices, bucket_hash_coeffs[None, :])[0],
            num_buckets,
        ).astype(np.int64)
        flat_keys = flat_cache[indices] + (assignment * table_words)[:, None]
        weights = sign_cache[indices] * values[:, None]
        active_provider().scatter_add(tables, flat_keys, weights)
    return tables.reshape(num_buckets, depth, width)


def subsample_values_shared_task(
    idx_name: str, count: int, coefficients: np.ndarray, range_size: int
) -> np.ndarray:
    """Worker-side subsample-hash evaluation over a shared component."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    indices = _attach_shared_array(idx_name, (count,), "int64")
    return polynomial_hash_values_task(indices, coefficients, range_size)


def run_task_batch(task: ServerTask, payloads: Sequence[Tuple]) -> List[Any]:
    """Worker-side driver of a batched dispatch: run every payload in order.

    One submission of this carries a whole chunk of per-server payloads to
    one worker process, so a wave's dispatch costs O(processes) IPC
    round-trips instead of O(servers); the per-payload results come back
    in a single reply, order preserved.
    """
    return [task(*payload) for payload in payloads]


def polynomial_hash_values_task(
    indices: np.ndarray, coefficients: np.ndarray, range_size: int
) -> np.ndarray:
    """Worker-side evaluation of one k-wise polynomial hash over ``indices``.

    Bit-for-bit identical to
    :class:`repro.sketch.hashing.KWiseHash.__call__` under the fused engine
    (which itself equals the naive ``%``-division evaluation).
    """
    from repro.sketch.hashing import range_reduce, stacked_polynomial_hash

    if indices.size == 0:
        return np.zeros(0, dtype=np.int64)
    hashed = stacked_polynomial_hash(indices, coefficients[None, :])[0]
    return range_reduce(hashed, range_size).astype(np.int64)


# --------------------------------------------------------------------------- #
# backends
# --------------------------------------------------------------------------- #
class SerialBackend:
    """Run per-server tasks in the current process (the default everywhere)."""

    def map_servers(
        self,
        cluster: LocalCluster,
        task: ServerTask,
        args: Tuple = (),
    ) -> List[Any]:
        """Apply ``task(local_matrix, *args)`` for every server, in order."""
        return [task(server.local_matrix, *args) for server in cluster.servers]


class MultiprocessBackend:
    """Run per-server tasks in separate OS processes.

    Parameters
    ----------
    processes:
        Number of worker processes; defaults to ``min(num_servers, os.cpu_count())``.

    Notes
    -----
    Only the *local computation* is parallelised; communication accounting
    stays with the caller (results returned here still have to be sent
    through the cluster's :class:`~repro.distributed.network.Network` to be
    charged).  ``task`` must be picklable (a module-level function).
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._processes = processes

    def map_servers(
        self,
        cluster: LocalCluster,
        task: ServerTask,
        args: Tuple = (),
    ) -> List[Any]:
        """Apply ``task(local_matrix, *args)`` for every server in parallel."""
        locals_ = [server.local_matrix for server in cluster.servers]
        workers = self._processes or max(1, min(len(locals_), _default_process_count()))
        if workers == 1 or len(locals_) == 1:
            return [task(local, *args) for local in locals_]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task, local, *args) for local in locals_]
            return [future.result() for future in futures]


def _default_process_count() -> int:
    import os

    return os.cpu_count() or 1


class SketchProcessPool:
    """Persistent worker pool for the sketch layer's per-server computation.

    Installed through :func:`repro.sketch.engine.multiprocess_execution`
    (opt-in), after which the fused Z-pipeline protocols run each server's
    local sketching / hash evaluation in a worker process.  Workers receive
    only the server's own data plus the hash coefficients the coordinator
    would broadcast, so the physical isolation of
    :class:`MultiprocessBackend` is preserved; outputs are bit-for-bit
    identical to in-process execution and all communication accounting stays
    in the calling process, unchanged.

    Parameters
    ----------
    processes:
        Number of worker processes; defaults to ``os.cpu_count()``.
    batch_dispatch:
        When True (the default), the per-server seam waves
        (:meth:`batched_sketches`, :meth:`subsample_values`) are grouped
        into **one submission per worker process** (O(processes) IPC
        round-trips per wave) instead of one per server; results are
        bit-identical either way -- batching only changes which process
        boundary a payload crosses, never the computation.  ``False``
        retains the per-server dispatch (the comparison baseline for
        tests and benchmarks).

    Attributes
    ----------
    submissions:
        Running count of IPC task submissions (``pool.submit`` calls);
        payloads executed inline, without crossing a process boundary,
        are not counted.  The dispatch-batching tests and the
        ``mp_batched_dispatch`` benchmark entry read this.
    """

    def __init__(
        self, processes: Optional[int] = None, *, batch_dispatch: bool = True
    ) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._processes = processes
        self._batch_dispatch = bool(batch_dispatch)
        self._executor: Optional[ProcessPoolExecutor] = None
        self.submissions = 0

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._processes or _default_process_count()
            )
        return self._executor

    def starmap(self, task: ServerTask, payloads: Sequence[Tuple]) -> List[Any]:
        """Apply ``task(*payload)`` per payload (one submission each), in order."""
        if len(payloads) <= 1:
            return [task(*payload) for payload in payloads]
        pool = self._pool()
        futures = [pool.submit(task, *payload) for payload in payloads]
        self.submissions += len(futures)
        return [future.result() for future in futures]

    def starmap_batched(self, task: ServerTask, payloads: Sequence[Tuple]) -> List[Any]:
        """Apply ``task(*payload)`` per payload with one submission per process.

        The payload list is split into ``min(processes, len(payloads))``
        contiguous chunks and each chunk ships as a single
        :func:`run_task_batch` submission, cutting a wave's dispatch
        round-trips from O(servers) to O(processes).  Contiguous chunking
        preserves result order on flatten, and each payload still runs
        through the identical task function, so outputs are bit-for-bit
        equal to :meth:`starmap`.  With ``batch_dispatch=False`` this
        delegates to the per-server path unchanged.
        """
        payloads = list(payloads)
        if not self._batch_dispatch:
            return self.starmap(task, payloads)
        if len(payloads) <= 1:
            return [task(*payload) for payload in payloads]
        processes = self._processes or _default_process_count()
        groups = min(max(1, processes), len(payloads))
        bounds = np.linspace(0, len(payloads), groups + 1, dtype=np.int64)
        chunks = [
            payloads[int(bounds[g]) : int(bounds[g + 1])]
            for g in range(groups)
            if int(bounds[g]) < int(bounds[g + 1])
        ]
        pool = self._pool()
        futures = [pool.submit(run_task_batch, task, chunk) for chunk in chunks]
        self.submissions += len(futures)
        results: List[Any] = []
        for future in futures:
            results.extend(future.result())
        return results

    @staticmethod
    def _publish_shared(array: np.ndarray):
        """Copy ``array`` into a fresh shared segment and return the handle."""
        segment = _shared_memory.SharedMemory(create=True, size=array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return segment

    @staticmethod
    def _release_segments(segments) -> None:
        """Close and unlink published segments (idempotent per segment)."""
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a view outlived the owner
                pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def _shared_ok(self, vector) -> bool:
        return _shared_memory is not None and vector.num_servers > 1

    def _shared_components(self, vector) -> List[Tuple[str, str, int]]:
        """Publish every server's ``(indices, values)`` to shared memory once.

        The published names are cached on the vector itself (components are
        immutable), so the repetitions of Algorithm 2 and every subsampling
        level stop re-pickling megabytes of component data per task; the
        segments are unlinked when the vector is garbage collected.
        """
        cached = getattr(vector, "_mp_shared_components", None)
        if cached is not None:
            return cached[1]
        import weakref

        segments: List = []
        names: List[Tuple[str, str, int]] = []
        for server in range(vector.num_servers):
            idx, val = vector.local_component(server)
            if idx.size == 0:
                names.append(("", "", 0))
                continue
            idx_segment = self._publish_shared(np.ascontiguousarray(idx))
            val_segment = self._publish_shared(np.ascontiguousarray(val))
            segments.extend((idx_segment, val_segment))
            names.append((idx_segment.name, val_segment.name, int(idx.size)))
        weakref.finalize(vector, self._release_segments, segments)
        vector._mp_shared_components = (segments, names)
        return names

    def build_domain_cache_shared(self, batched, assign: np.ndarray) -> bool:
        """Build a batched domain cache slab-parallel, directly in shared memory.

        Called from
        :meth:`~repro.sketch.countsketch.BatchedCountSketch.build_domain_cache`
        when this pool is installed.  The domain splits into one contiguous
        slab per process; each worker runs the (elementwise, hence
        bit-identical) blocked kernel over its slab and writes straight into
        the shared ``(flat, sign)`` arrays -- so the dominant serial cost of
        a repetition parallelises and the cache pages are already mapped in
        every worker for the sketch gathers that follow.  Returns False (and
        builds nothing) when shared memory is unavailable, leaving the
        caller on the serial path.
        """
        if _shared_memory is None:
            return False
        processes = self._processes or _default_process_count()
        if processes < 2:
            return False
        domain, depth, width = batched.domain, batched.depth, batched.width
        flat_segment = _shared_memory.SharedMemory(create=True, size=domain * depth * 8)
        sign_segment = _shared_memory.SharedMemory(create=True, size=domain * depth)
        try:
            slabs = min(processes, domain)
            bounds = np.linspace(0, domain, slabs + 1, dtype=np.int64)
            payloads = []
            for slab in range(slabs):
                start, stop = int(bounds[slab]), int(bounds[slab + 1])
                if start == stop:
                    continue
                payloads.append((
                    batched._bucket_coeffs,
                    batched._sign_coeffs,
                    assign[start:stop],
                    start,
                    stop,
                    width,
                    depth,
                    domain,
                    flat_segment.name,
                    sign_segment.name,
                    batched.CACHE_BUILD_BLOCK,
                ))
            self.starmap(domain_cache_range_task, payloads)
        except Exception:
            self._release_segments([flat_segment, sign_segment])
            raise
        import weakref

        batched._flat_cache = np.ndarray((domain, depth), dtype=np.int64, buffer=flat_segment.buf)
        batched._sign_cache = np.ndarray((domain, depth), dtype=np.int8, buffer=sign_segment.buf)
        batched._signed_cell_cache = None
        batched._shm_cache_names = (flat_segment.name, sign_segment.name)
        # The cache arrays alias the segments; keep them mapped until the
        # batched family itself is collected.
        weakref.finalize(batched, self._release_segments, [flat_segment, sign_segment])
        return True

    def batched_sketches(
        self, vector, batched, assignment: np.ndarray, *, bucket_hash=None
    ) -> List[np.ndarray]:
        """All servers' ``(num_buckets, depth, width)`` table stacks, batched per process.

        With shared memory available, the per-task payload shrinks to the
        repetition's pairwise bucket-hash coefficients: components and the
        domain cache are attached by name (see :meth:`_shared_components`
        and :meth:`build_domain_cache_shared`) and each worker evaluates the
        bucket hash over its own indices -- bit-for-bit identical to the
        in-process cached path.  Otherwise the original coefficient-broadcast
        kernel runs from pickled payloads.
        """
        cache_names = getattr(batched, "_shm_cache_names", None)
        if (
            self._shared_ok(vector)
            and cache_names is not None
            and bucket_hash is not None
            and getattr(batched, "_flat_cache", None) is not None
        ):
            flat_name, sign_name = cache_names
            coefficients = np.asarray(bucket_hash.coefficients, dtype=np.int64)
            payloads = [
                (
                    idx_name,
                    val_name,
                    count,
                    coefficients,
                    flat_name,
                    sign_name,
                    batched.domain,
                    batched.num_buckets,
                    batched.depth,
                    batched.width,
                )
                for idx_name, val_name, count in self._shared_components(vector)
            ]
            return self.starmap_batched(batched_component_sketch_shared_task, payloads)
        bucket_coeffs, sign_coeffs = batched.broadcast_coefficients()
        payloads = []
        for server in range(vector.num_servers):
            idx, val = vector.local_component(server)
            payloads.append((
                idx,
                val,
                assignment[idx] if idx.size else idx,
                bucket_coeffs,
                sign_coeffs,
                batched.num_buckets,
                batched.depth,
                batched.width,
            ))
        return self.starmap_batched(batched_component_sketch_task, payloads)

    def subsample_values(self, vector, subsample) -> List[np.ndarray]:
        """Every server's subsample-hash values ``g(idx)``, batched per process."""
        coefficients = subsample.coefficients
        if self._shared_ok(vector):
            payloads = [
                (idx_name, count, coefficients, subsample.domain_scale)
                for idx_name, _, count in self._shared_components(vector)
            ]
            return self.starmap_batched(subsample_values_shared_task, payloads)
        payloads = []
        for server in range(vector.num_servers):
            idx, _ = vector.local_component(server)
            payloads.append((idx, coefficients, subsample.domain_scale))
        return self.starmap_batched(polynomial_hash_values_task, payloads)

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


def parallel_aggregate_rows(
    cluster: LocalCluster,
    indices: Sequence[int],
    backend: Optional[MultiprocessBackend] = None,
    *,
    tag: str = "gather_rows",
    apply_function: bool = True,
) -> np.ndarray:
    """Multiprocess variant of :meth:`LocalCluster.aggregate_rows`.

    The per-server row extraction runs in worker processes; the results are
    then charged to the cluster's network exactly as the serial version does
    (the CP's own contribution stays free), summed and passed through ``f``.
    """
    backend = backend or MultiprocessBackend()
    idx = np.asarray(indices, dtype=int)
    local_rows = backend.map_servers(cluster, local_rows_task, args=(idx,))
    for server in range(1, cluster.num_servers):
        cluster.network.send(server, 0, local_rows[server], tag=tag)
    total = np.sum(local_rows, axis=0)
    if apply_function:
        return np.asarray(cluster.function(total), dtype=float)
    return np.asarray(total, dtype=float)
