"""Multiprocess execution of per-server local computations.

The paper's experiments "use multiple processes to simulate multiple
servers".  The in-process :class:`~repro.distributed.cluster.LocalCluster`
is sufficient (and much faster) for correctness and communication
accounting, but this module provides the same physical isolation when
wanted: each server's local computation runs in its own OS process, so no
shared memory can leak information between servers.

Because worker processes receive their inputs by pickling, tasks must be
*module-level callables* (no lambdas/closures); a few common tasks are
provided and arbitrary ones can be passed as long as they are picklable.

Example
-------
>>> from repro.distributed.mp_backend import MultiprocessBackend, local_row_norms_task
>>> backend = MultiprocessBackend(processes=4)
>>> per_server_norms = backend.map_servers(cluster, local_row_norms_task)
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.distributed.cluster import LocalCluster
from repro.distributed.server import LocalMatrix

#: A per-server task: receives the server's local matrix plus any extra
#: arguments and returns a picklable result.
ServerTask = Callable[..., Any]


# --------------------------------------------------------------------------- #
# predefined picklable tasks
# --------------------------------------------------------------------------- #
def local_row_norms_task(local_matrix: LocalMatrix) -> np.ndarray:
    """Squared Euclidean norms of the server's local rows."""
    if sparse.issparse(local_matrix):
        squared = local_matrix.multiply(local_matrix)
        return np.asarray(squared.sum(axis=1)).ravel()
    arr = np.asarray(local_matrix, dtype=float)
    return np.einsum("ij,ij->i", arr, arr)


def local_rows_task(local_matrix: LocalMatrix, indices: Sequence[int]) -> np.ndarray:
    """The server's local rows at ``indices`` as a dense block."""
    idx = np.asarray(indices, dtype=int)
    rows = local_matrix[idx]
    if sparse.issparse(rows):
        return np.asarray(rows.todense(), dtype=float)
    return np.asarray(rows, dtype=float)


def local_frobenius_task(local_matrix: LocalMatrix) -> float:
    """Squared Frobenius norm of the server's local matrix."""
    if sparse.issparse(local_matrix):
        return float(local_matrix.multiply(local_matrix).sum())
    arr = np.asarray(local_matrix, dtype=float)
    return float(np.sum(arr * arr))


def local_countsketch_task(
    local_matrix: LocalMatrix,
    depth: int,
    width: int,
    seed: int,
) -> np.ndarray:
    """CountSketch table of the server's flattened local matrix.

    The hash seed is shared (broadcast by the coordinator), so every server
    builds a compatible table; the coordinator merges them by addition.
    """
    from repro.sketch.countsketch import CountSketch

    if sparse.issparse(local_matrix):
        coo = local_matrix.tocoo()
        flat = coo.row.astype(np.int64) * local_matrix.shape[1] + coo.col.astype(np.int64)
        values = coo.data.astype(float)
    else:
        dense = np.asarray(local_matrix, dtype=float).ravel()
        flat = np.nonzero(dense)[0].astype(np.int64)
        values = dense[flat]
    domain = int(local_matrix.shape[0] * local_matrix.shape[1])
    sketch = CountSketch(depth, width, domain, seed=seed)
    return sketch.sketch(flat, values)


def batched_component_sketch_task(
    indices: np.ndarray,
    values: np.ndarray,
    assignment: np.ndarray,
    bucket_coeffs: np.ndarray,
    sign_coeffs: np.ndarray,
    num_buckets: int,
    depth: int,
    width: int,
) -> np.ndarray:
    """Worker-side batched CountSketch of one server's sparse component.

    Receives only what a real coordinator broadcasts -- the hash coefficient
    tensors -- plus the server's own data, and reproduces the cache-free
    fused kernel bit-for-bit (see
    :func:`repro.sketch.countsketch.batched_sketch_uncached`).
    """
    from repro.sketch.countsketch import batched_sketch_uncached

    if indices.size == 0:
        return np.zeros((num_buckets, depth, width), dtype=float)
    return batched_sketch_uncached(
        indices, values, assignment,
        bucket_coeffs, sign_coeffs, num_buckets, depth, width,
    )


def polynomial_hash_values_task(
    indices: np.ndarray, coefficients: np.ndarray, range_size: int
) -> np.ndarray:
    """Worker-side evaluation of one k-wise polynomial hash over ``indices``.

    Bit-for-bit identical to
    :class:`repro.sketch.hashing.KWiseHash.__call__` under the fused engine
    (which itself equals the naive ``%``-division evaluation).
    """
    from repro.sketch.hashing import range_reduce, stacked_polynomial_hash

    if indices.size == 0:
        return np.zeros(0, dtype=np.int64)
    hashed = stacked_polynomial_hash(indices, coefficients[None, :])[0]
    return range_reduce(hashed, range_size).astype(np.int64)


# --------------------------------------------------------------------------- #
# backends
# --------------------------------------------------------------------------- #
class SerialBackend:
    """Run per-server tasks in the current process (the default everywhere)."""

    def map_servers(
        self,
        cluster: LocalCluster,
        task: ServerTask,
        args: Tuple = (),
    ) -> List[Any]:
        """Apply ``task(local_matrix, *args)`` for every server, in order."""
        return [task(server.local_matrix, *args) for server in cluster.servers]


class MultiprocessBackend:
    """Run per-server tasks in separate OS processes.

    Parameters
    ----------
    processes:
        Number of worker processes; defaults to ``min(num_servers, os.cpu_count())``.

    Notes
    -----
    Only the *local computation* is parallelised; communication accounting
    stays with the caller (results returned here still have to be sent
    through the cluster's :class:`~repro.distributed.network.Network` to be
    charged).  ``task`` must be picklable (a module-level function).
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._processes = processes

    def map_servers(
        self,
        cluster: LocalCluster,
        task: ServerTask,
        args: Tuple = (),
    ) -> List[Any]:
        """Apply ``task(local_matrix, *args)`` for every server in parallel."""
        locals_ = [server.local_matrix for server in cluster.servers]
        workers = self._processes or max(1, min(len(locals_), _default_process_count()))
        if workers == 1 or len(locals_) == 1:
            return [task(local, *args) for local in locals_]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task, local, *args) for local in locals_]
            return [future.result() for future in futures]


def _default_process_count() -> int:
    import os

    return os.cpu_count() or 1


class SketchProcessPool:
    """Persistent worker pool for the sketch layer's per-server computation.

    Installed through :func:`repro.sketch.engine.multiprocess_execution`
    (opt-in), after which the fused Z-pipeline protocols run each server's
    local sketching / hash evaluation in a worker process.  Workers receive
    only the server's own data plus the hash coefficients the coordinator
    would broadcast, so the physical isolation of
    :class:`MultiprocessBackend` is preserved; outputs are bit-for-bit
    identical to in-process execution and all communication accounting stays
    in the calling process, unchanged.

    Parameters
    ----------
    processes:
        Number of worker processes; defaults to ``os.cpu_count()``.
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._processes = processes
        self._executor: Optional[ProcessPoolExecutor] = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._processes or _default_process_count()
            )
        return self._executor

    def starmap(self, task: ServerTask, payloads: Sequence[Tuple]) -> List[Any]:
        """Apply ``task(*payload)`` for every payload, preserving order."""
        if len(payloads) <= 1:
            return [task(*payload) for payload in payloads]
        pool = self._pool()
        futures = [pool.submit(task, *payload) for payload in payloads]
        return [future.result() for future in futures]

    def batched_sketches(self, vector, batched, assignment: np.ndarray) -> List[np.ndarray]:
        """All servers' ``(num_buckets, depth, width)`` table stacks, one worker each."""
        bucket_coeffs, sign_coeffs = batched.broadcast_coefficients()
        payloads = []
        for server in range(vector.num_servers):
            idx, val = vector.local_component(server)
            payloads.append((
                idx,
                val,
                assignment[idx] if idx.size else idx,
                bucket_coeffs,
                sign_coeffs,
                batched.num_buckets,
                batched.depth,
                batched.width,
            ))
        return self.starmap(batched_component_sketch_task, payloads)

    def subsample_values(self, vector, subsample) -> List[np.ndarray]:
        """Every server's subsample-hash values ``g(idx)``, one worker each."""
        coefficients = subsample.coefficients
        payloads = []
        for server in range(vector.num_servers):
            idx, _ = vector.local_component(server)
            payloads.append((idx, coefficients, subsample.domain_scale))
        return self.starmap(polynomial_hash_values_task, payloads)

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


def parallel_aggregate_rows(
    cluster: LocalCluster,
    indices: Sequence[int],
    backend: Optional[MultiprocessBackend] = None,
    *,
    tag: str = "gather_rows",
    apply_function: bool = True,
) -> np.ndarray:
    """Multiprocess variant of :meth:`LocalCluster.aggregate_rows`.

    The per-server row extraction runs in worker processes; the results are
    then charged to the cluster's network exactly as the serial version does
    (the CP's own contribution stays free), summed and passed through ``f``.
    """
    backend = backend or MultiprocessBackend()
    idx = np.asarray(indices, dtype=int)
    local_rows = backend.map_servers(cluster, local_rows_task, args=(idx,))
    for server in range(1, cluster.num_servers):
        cluster.network.send(server, 0, local_rows[server], tag=tag)
    total = np.sum(local_rows, axis=0)
    if apply_function:
        return np.asarray(cluster.function(total), dtype=float)
    return np.asarray(total, dtype=float)
