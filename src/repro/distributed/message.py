"""Messages exchanged between servers and their word-size accounting.

The paper measures communication in *words*: one word holds one machine
number (an entry of a matrix, an index, a hash seed, a counter).  The helper
:func:`payload_word_count` maps arbitrary Python/numpy payloads to a word
count using that convention, and :class:`Message` is the immutable record of
one transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Number
from typing import Any, Mapping, Sequence

import numpy as np
from scipy import sparse


def payload_word_count(payload: Any) -> int:
    """Return the number of machine words needed to transmit ``payload``.

    Conventions
    -----------
    * a scalar (int, float, bool, numpy scalar) costs 1 word;
    * a numpy array costs one word per element;
    * a scipy sparse matrix costs two words per stored element (index and
      value) plus one word for the shape -- the sparsity structure has to be
      transmitted too;
    * strings cost ``ceil(len/8)`` words (8 characters per word);
    * ``None`` costs 0 words;
    * containers (list/tuple/dict/set) cost the sum of their items plus one
      word of framing per item for dicts (the key).
    """
    if payload is None:
        return 0
    if isinstance(payload, (bool, np.bool_)):
        return 1
    if isinstance(payload, (Number, np.generic)):
        return 1
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if sparse.issparse(payload):
        return int(2 * payload.nnz + 1)
    if isinstance(payload, str):
        return (len(payload) + 7) // 8
    if isinstance(payload, Mapping):
        total = 0
        for key, value in payload.items():
            total += payload_word_count(key) + payload_word_count(value)
        return total
    if isinstance(payload, (Sequence, set, frozenset)):
        return sum(payload_word_count(item) for item in payload)
    if hasattr(payload, "word_count"):
        return int(payload.word_count())
    raise TypeError(
        f"cannot compute word count for payload of type {type(payload).__name__}"
    )


@dataclass(frozen=True)
class Message:
    """One directed transfer of ``payload`` from ``sender`` to ``receiver``.

    Attributes
    ----------
    sender, receiver:
        Server indices (0-based); by convention server 0 is the Central
        Processor.
    payload:
        The transmitted object.  Only used for delivering data inside the
        simulation -- the accounting uses ``words``.
    tag:
        Human-readable label of the protocol step (e.g. ``"gather_rows"``),
        used for per-phase communication breakdowns.
    words:
        Number of machine words, computed automatically when omitted.
    """

    sender: int
    receiver: int
    payload: Any
    tag: str = ""
    words: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.words < 0:
            object.__setattr__(self, "words", payload_word_count(self.payload))

    @property
    def is_to_coordinator(self) -> bool:
        """True if the message flows toward the Central Processor (server 0)."""
        return self.receiver == 0

    @property
    def is_broadcast_leg(self) -> bool:
        """True if the message flows from the Central Processor to a worker."""
        return self.sender == 0
