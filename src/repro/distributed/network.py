"""Star-topology network with exact communication accounting.

Every protocol in the library moves data through a :class:`Network` instance
so that the total number of transmitted words is measured exactly.  The
network does not copy payloads -- simulation fidelity is about *accounting*,
not serialisation -- but it validates endpoints and keeps a structured log
that experiments aggregate into the communication ratios reported in the
paper's evaluation.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro import obs
from repro.distributed.message import Message, payload_word_count

#: Number of bytes per machine word used when converting to bytes.
BYTES_PER_WORD = 8


@dataclass
class CommunicationLog:
    """Aggregated view of the traffic recorded by a :class:`Network`."""

    total_words: int
    total_messages: int
    words_by_tag: Dict[str, int]
    words_to_coordinator: int
    words_from_coordinator: int

    @property
    def total_bytes(self) -> int:
        """Total traffic in bytes (8 bytes per word)."""
        return self.total_words * BYTES_PER_WORD

    def ratio_to(self, input_words: int) -> float:
        """Return total communication divided by ``input_words``.

        This is the quantity the paper bounds ("the ratio of the amount of
        total communication to the sum of local data sizes").
        """
        if input_words <= 0:
            raise ValueError(f"input_words must be positive, got {input_words}")
        return self.total_words / input_words


class Network:
    """Message log for a cluster of ``num_servers`` servers in a star topology.

    Server ``0`` is the Central Processor (CP).  Any server may send to any
    other server; per the paper, point-to-point messages between workers are
    allowed but cost the same as routing through the CP up to constants, so
    the simulation simply records them directly.
    """

    def __init__(self, num_servers: int, *, keep_messages: bool = False) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        self._num_servers = num_servers
        self._keep_messages = keep_messages
        self._messages: List[Message] = []
        self._total_words = 0
        self._total_messages = 0
        self._words_by_tag: Dict[str, int] = defaultdict(int)
        self._words_to_coordinator = 0
        self._words_from_coordinator = 0

    @property
    def num_servers(self) -> int:
        """Number of servers attached to this network (including the CP)."""
        return self._num_servers

    @property
    def total_words(self) -> int:
        """Total number of words transferred so far."""
        return self._total_words

    @property
    def total_messages(self) -> int:
        """Total number of messages transferred so far."""
        return self._total_messages

    @property
    def messages(self) -> List[Message]:
        """The individual messages (only populated when ``keep_messages=True``)."""
        return list(self._messages)

    def _check_endpoint(self, server: int, name: str) -> None:
        if not 0 <= server < self._num_servers:
            raise ValueError(
                f"{name} must be in [0, {self._num_servers - 1}], got {server}"
            )

    def send(self, sender: int, receiver: int, payload: Any, tag: str = "") -> Any:
        """Record a transfer of ``payload`` and return the payload.

        Self-messages (``sender == receiver``) are free: a server reading its
        own memory does not communicate.
        """
        self._check_endpoint(sender, "sender")
        self._check_endpoint(receiver, "receiver")
        if sender == receiver:
            return payload
        message = Message(sender=sender, receiver=receiver, payload=payload, tag=tag)
        self._record(message)
        return payload

    def charge(self, sender: int, receiver: int, words: int, tag: str = "") -> None:
        """Record ``words`` of traffic without carrying an actual payload.

        Useful for accounting protocol overheads (e.g. broadcasting a random
        seed, an acknowledgement) where materialising the payload in the
        simulation would be pointless.
        """
        self._check_endpoint(sender, "sender")
        self._check_endpoint(receiver, "receiver")
        if words < 0:
            raise ValueError(f"words must be non-negative, got {words}")
        if sender == receiver or words == 0:
            return
        message = Message(sender=sender, receiver=receiver, payload=None, tag=tag, words=words)
        self._record(message)

    def broadcast(self, sender: int, payload: Any, tag: str = "") -> Any:
        """Send ``payload`` from ``sender`` to every other server; return the payload."""
        for receiver in range(self._num_servers):
            if receiver != sender:
                self.send(sender, receiver, payload, tag=tag)
        return payload

    def gather(
        self,
        receiver: int,
        payloads: Iterable[Any],
        tag: str = "",
        senders: Optional[Iterable[int]] = None,
    ) -> List[Any]:
        """Record one message per payload flowing into ``receiver``.

        ``payloads`` is indexed by sender (0..s-1) unless ``senders`` is
        given explicitly.  Returns the list of payloads in sender order.
        """
        payload_list = list(payloads)
        if senders is None:
            sender_list = list(range(len(payload_list)))
        else:
            sender_list = list(senders)
        if len(sender_list) != len(payload_list):
            raise ValueError("senders and payloads must have equal length")
        collected = []
        for sender, payload in zip(sender_list, payload_list):
            collected.append(self.send(sender, receiver, payload, tag=tag))
        return collected

    def _record(self, message: Message) -> None:
        self._total_words += message.words
        self._total_messages += 1
        if message.tag:
            self._words_by_tag[message.tag] += message.words
        if message.receiver == 0:
            self._words_to_coordinator += message.words
        if message.sender == 0:
            self._words_from_coordinator += message.words
        if self._keep_messages:
            self._messages.append(message)
        telemetry = obs.active()
        if telemetry is not None:
            # Observation only: the ledger above is the source of truth and
            # the telemetry counters mirror it (the obs tests assert the
            # per-tag totals are *equal*, never that they feed back).
            telemetry.metrics.counter("words.total").add(message.words)
            if message.tag:
                telemetry.metrics.counter(f"words.{message.tag}").add(message.words)

    def snapshot(self) -> CommunicationLog:
        """Return an immutable aggregate of the traffic so far."""
        return CommunicationLog(
            total_words=self._total_words,
            total_messages=self._total_messages,
            words_by_tag=dict(self._words_by_tag),
            words_to_coordinator=self._words_to_coordinator,
            words_from_coordinator=self._words_from_coordinator,
        )

    def reset(self) -> None:
        """Clear all counters and logged messages."""
        self._messages.clear()
        self._total_words = 0
        self._total_messages = 0
        self._words_by_tag.clear()
        self._words_to_coordinator = 0
        self._words_from_coordinator = 0

    def words_since(self, checkpoint: int) -> int:
        """Return the number of words transferred since ``checkpoint`` (a prior ``total_words``)."""
        if checkpoint > self._total_words:
            raise ValueError("checkpoint is in the future of this network")
        return self._total_words - checkpoint

    @staticmethod
    def payload_words(payload: Any) -> int:
        """Expose :func:`payload_word_count` for callers sizing messages up-front."""
        return payload_word_count(payload)


class TransportNetwork(Network):
    """The accounting network's transport-backed twin.

    Used by :mod:`repro.runtime.service` when the protocol runs over a real
    transport: the protocol code keeps charging *words* through the
    inherited :class:`Network` interface exactly as in the simulation, while
    the runtime records the bytes each tagged wire section actually moved
    (via :meth:`record_frame`).  The two ledgers are mutually auditing:
    :meth:`verify_wire_accounting` asserts that for every tag the data plane
    carried exactly ``BYTES_PER_WORD`` bytes per charged word -- the
    invariant that makes simulated communication ratios and real traffic
    directly comparable.

    Framing (length prefixes, ops, metadata, request parameters the
    simulation never charges) is tracked separately as control overhead and
    deliberately excluded from the word comparison, mirroring how the
    paper's word model ignores protocol headers.

    **Schedule independence.**  Both ledgers are plain sums over per-frame
    contributions, so the totals -- and :meth:`verify_wire_accounting` --
    are invariant under any reordering of the same frames.  This is what
    lets the pipelined coordinator (scatter waves, out-of-order replies)
    charge *bit-identical* per-tag words and bytes to the sequential
    worker-by-worker schedule.  :meth:`record_frame` takes a lock so the
    ledger also stays exact if frames are ever recorded from concurrent
    threads.
    """

    def __init__(self, num_servers: int, *, keep_messages: bool = False) -> None:
        super().__init__(num_servers, keep_messages=keep_messages)
        self._data_bytes_by_tag: Dict[str, int] = defaultdict(int)
        self._overhead_bytes = 0
        self._frames = 0
        self._ledger_lock = threading.Lock()

    def record_frame(self, data_sections, overhead_bytes: int) -> None:
        """Record one transported frame's tagged data sections and overhead."""
        with self._ledger_lock:
            for tag, nbytes in data_sections:
                self._data_bytes_by_tag[tag] += int(nbytes)
            self._overhead_bytes += int(overhead_bytes)
            self._frames += 1
        telemetry = obs.active()
        if telemetry is not None:
            metrics = telemetry.metrics
            metrics.counter("wire.frames").add(1)
            metrics.counter("wire.overhead_bytes").add(int(overhead_bytes))
            for tag, nbytes in data_sections:
                if tag:
                    metrics.counter(f"wire.bytes.{tag}").add(int(nbytes))

    @property
    def data_bytes_by_tag(self) -> Dict[str, int]:
        """Actually transmitted data-plane bytes per tag."""
        return dict(self._data_bytes_by_tag)

    @property
    def total_data_bytes(self) -> int:
        """Total data-plane bytes moved through the transport."""
        return sum(self._data_bytes_by_tag.values())

    @property
    def control_overhead_bytes(self) -> int:
        """Framing + control bytes (never charged in the word model)."""
        return self._overhead_bytes

    @property
    def frames_transported(self) -> int:
        """Number of wire frames recorded."""
        return self._frames

    def reset(self) -> None:
        """Clear the word counters and the byte ledger."""
        super().reset()
        self._data_bytes_by_tag.clear()
        self._overhead_bytes = 0
        self._frames = 0

    def verify_wire_accounting(self) -> Dict[str, int]:
        """Assert data bytes equal ``BYTES_PER_WORD * words`` for every tag.

        Returns the per-tag byte ledger on success; raises
        :class:`~repro.core.errors.WireAccountingError` naming every
        mismatched tag otherwise.
        """
        from repro.core.errors import WireAccountingError

        snapshot = self.snapshot()
        mismatches = []
        tags = set(snapshot.words_by_tag) | set(self._data_bytes_by_tag)
        for tag in sorted(tags):
            expected = snapshot.words_by_tag.get(tag, 0) * BYTES_PER_WORD
            actual = self._data_bytes_by_tag.get(tag, 0)
            if expected != actual:
                mismatches.append(
                    f"tag {tag!r}: {actual} bytes on the wire vs "
                    f"{expected} expected ({snapshot.words_by_tag.get(tag, 0)} words)"
                )
        expected_total = snapshot.total_words * BYTES_PER_WORD
        if self.total_data_bytes != expected_total:
            mismatches.append(
                f"total: {self.total_data_bytes} bytes on the wire vs "
                f"{expected_total} expected ({snapshot.total_words} words)"
            )
        if mismatches:
            raise WireAccountingError(
                "wire traffic disagrees with the simulated word accounting: "
                + "; ".join(mismatches)
            )
        return self.data_bytes_by_tag
