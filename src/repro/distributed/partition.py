"""Strategies for splitting a logically global matrix across ``s`` servers.

The generalized partition model only requires that the global matrix is
``A_{ij} = f(sum_t A^t_{ij})``; how the local matrices arise depends on the
application.  This module provides the partition schemes used in the paper's
motivation and evaluation:

* :func:`row_partition` -- every data point (row) lives on exactly one
  server (the classic row-partition model; local matrices are sparse).
* :func:`arbitrary_partition` -- each entry is an arbitrary sum of per-server
  shares (the linear "arbitrary partition model" of Kannan-Vempala-Woodruff).
* :func:`entrywise_partition` -- every entry lives on exactly one server.
* :func:`duplicate_records_partition` -- every server holds a noisy partial
  copy of the data (the "hospital records" scenario motivating the
  softmax/max aggregation).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy import sparse

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix


def _check_num_servers(num_servers: int) -> int:
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    return int(num_servers)


def row_partition(
    matrix: np.ndarray,
    num_servers: int,
    seed: RandomState = None,
) -> List[sparse.csr_matrix]:
    """Assign each row of ``matrix`` to exactly one server, uniformly at random.

    Every local matrix has the full ``n x d`` shape but only the assigned rows
    are (potentially) nonzero; with the identity ``f`` the sum across servers
    recovers ``matrix`` exactly.

    Returns
    -------
    list of scipy.sparse.csr_matrix
        One local matrix per server.
    """
    arr = check_matrix(matrix, "matrix")
    s = _check_num_servers(num_servers)
    rng = ensure_rng(seed)
    n, _ = arr.shape
    assignment = rng.integers(0, s, size=n)
    locals_: List[sparse.csr_matrix] = []
    for t in range(s):
        mask = assignment == t
        local = sparse.csr_matrix(arr * mask[:, None])
        locals_.append(local)
    return locals_


def arbitrary_partition(
    matrix: np.ndarray,
    num_servers: int,
    seed: RandomState = None,
    share_scale: float = 1.0,
) -> List[np.ndarray]:
    """Split ``matrix`` into ``num_servers`` dense additive shares.

    The first ``s-1`` shares are independent Gaussian matrices with standard
    deviation ``share_scale * std(matrix)`` and the last share is chosen so
    the shares sum exactly to ``matrix``.  This realises the arbitrary
    (linear) partition model: no individual server's data resembles the
    global matrix.
    """
    arr = check_matrix(matrix, "matrix")
    s = _check_num_servers(num_servers)
    rng = ensure_rng(seed)
    if s == 1:
        return [arr.copy()]
    scale = float(share_scale) * (float(np.std(arr)) + 1e-12)
    shares = [rng.normal(0.0, scale, size=arr.shape) for _ in range(s - 1)]
    last = arr - np.sum(shares, axis=0)
    shares.append(last)
    return shares


def entrywise_partition(
    matrix: np.ndarray,
    num_servers: int,
    seed: RandomState = None,
) -> List[sparse.csr_matrix]:
    """Assign each entry of ``matrix`` to exactly one server, uniformly at random.

    This is the natural partition when different servers observe different
    measurements of the same record (e.g. different hospitals holding
    different indicator values for the same patient).
    """
    arr = check_matrix(matrix, "matrix")
    s = _check_num_servers(num_servers)
    rng = ensure_rng(seed)
    assignment = rng.integers(0, s, size=arr.shape)
    locals_: List[sparse.csr_matrix] = []
    for t in range(s):
        locals_.append(sparse.csr_matrix(arr * (assignment == t)))
    return locals_


def duplicate_records_partition(
    matrix: np.ndarray,
    num_servers: int,
    seed: RandomState = None,
    *,
    observation_probability: float = 0.7,
    noise_scale: float = 0.05,
    nonnegative: bool = True,
) -> List[np.ndarray]:
    """Give each server a noisy, partially-observed copy of ``matrix``.

    This models the paper's motivating "hospital records" example: each
    hospital (server) observes each indicator of each person with probability
    ``observation_probability``, possibly under-reporting it; the true value
    is best recovered by the maximum (or a softmax) across servers rather
    than a sum.

    Observed entries equal ``matrix * (1 - u)`` where ``u`` is uniform on
    ``[0, noise_scale]`` (servers may under-report, never over-report, so the
    entrywise maximum approaches the truth from below).  Unobserved entries
    are zero.  Every entry is guaranteed to be observed by at least one
    server so the maximum is never vacuous.
    """
    arr = check_matrix(matrix, "matrix")
    if nonnegative and np.any(arr < 0):
        raise ValueError("duplicate_records_partition expects a non-negative matrix")
    s = _check_num_servers(num_servers)
    if not 0 < observation_probability <= 1:
        raise ValueError(
            f"observation_probability must be in (0, 1], got {observation_probability}"
        )
    if noise_scale < 0 or noise_scale >= 1:
        raise ValueError(f"noise_scale must be in [0, 1), got {noise_scale}")
    rng = ensure_rng(seed)
    observed = rng.random(size=(s,) + arr.shape) < observation_probability
    # Guarantee each entry is observed at least once: force a random server.
    missing_everywhere = ~observed.any(axis=0)
    if np.any(missing_everywhere):
        forced = rng.integers(0, s, size=arr.shape)
        for t in range(s):
            observed[t] |= missing_everywhere & (forced == t)
    locals_: List[np.ndarray] = []
    for t in range(s):
        attenuation = 1.0 - rng.random(size=arr.shape) * noise_scale
        locals_.append(arr * attenuation * observed[t])
    return locals_


class ShardAssignment:
    """A contiguous-range map from vector coordinates to worker shards.

    The sharded execution backend splits one *logical* server's sparse
    component across ``num_shards`` worker shards by coordinate: shard ``k``
    owns the half-open coordinate range ``[boundaries[k-1], boundaries[k])``
    (with implicit 0 and ``dimension`` at the ends).  Contiguous ranges keep
    the map O(num_shards) words -- it travels inside checkpoints -- and make
    lookups one ``searchsorted``.

    Two constructors cover the lifecycle: :meth:`uniform` (the default
    spawn-time map) and :meth:`balanced` (quantile boundaries over an
    observed support, the target map of a live rebalance).
    """

    def __init__(self, dimension: int, boundaries) -> None:
        self.dimension = int(dimension)
        if self.dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {self.dimension}")
        self.boundaries = np.asarray(boundaries, dtype=np.int64).reshape(-1)
        if self.boundaries.size and (
            np.any(np.diff(self.boundaries) < 0)
            or self.boundaries[0] < 0
            or self.boundaries[-1] > self.dimension
        ):
            raise ValueError(
                "boundaries must be non-decreasing and within [0, dimension]"
            )

    @property
    def num_shards(self) -> int:
        return int(self.boundaries.size) + 1

    @classmethod
    def uniform(cls, dimension: int, num_shards: int) -> "ShardAssignment":
        """Equal-width coordinate ranges (shard k gets ~dimension/K indices)."""
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        boundaries = (
            np.arange(1, int(num_shards), dtype=np.int64) * int(dimension)
        ) // int(num_shards)
        return cls(dimension, boundaries)

    @classmethod
    def balanced(
        cls, dimension: int, num_shards: int, support_indices
    ) -> "ShardAssignment":
        """Quantile boundaries over ``support_indices``: equal *support* per shard.

        The rebalance target for a skewed component -- each shard ends up
        with (almost) the same number of distinct stored coordinates, no
        matter how the support clusters inside ``[0, dimension)``.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        idx = np.unique(np.asarray(support_indices, dtype=np.int64))
        if idx.size == 0:
            return cls.uniform(dimension, num_shards)
        if idx[0] < 0 or idx[-1] >= dimension:
            raise ValueError("support indices must lie in [0, dimension)")
        positions = (np.arange(1, int(num_shards)) * idx.size) // int(num_shards)
        return cls(dimension, idx[positions])

    def shard_of(self, indices) -> np.ndarray:
        """Vectorised coordinate -> shard lookup."""
        idx = np.asarray(indices, dtype=np.int64)
        return np.searchsorted(self.boundaries, idx, side="right")

    def split(self, indices, values) -> List[tuple]:
        """Split one sparse component into per-shard pieces, order preserved.

        Stable masks keep each shard's entries in the original array order
        (float scatter-adds are order-sensitive; preserving order keeps the
        sharded run's per-shard state deterministic).
        """
        idx = np.asarray(indices, dtype=np.int64)
        val = np.asarray(values, dtype=float)
        if idx.shape != val.shape or idx.ndim != 1:
            raise ValueError("indices and values must be matching 1-D arrays")
        dest = self.shard_of(idx)
        return [
            (idx[dest == shard], val[dest == shard])
            for shard in range(self.num_shards)
        ]

    def same_as(self, other: "ShardAssignment") -> bool:
        """Exact equality of dimension and boundaries."""
        return (
            isinstance(other, ShardAssignment)
            and self.dimension == other.dimension
            and np.array_equal(self.boundaries, other.boundaries)
        )

    _LABEL = "shard-assignment"

    def _as_payload(self) -> tuple:
        return (self._LABEL, self.dimension, self.boundaries)

    @classmethod
    def from_payload(cls, payload) -> "ShardAssignment":
        if payload[0] != cls._LABEL:
            raise ValueError(
                f"payload does not hold a shard assignment (found {payload[0]!r})"
            )
        _, dimension, boundaries = payload
        return cls(dimension, boundaries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardAssignment(dimension={self.dimension}, "
            f"num_shards={self.num_shards}, boundaries={self.boundaries.tolist()})"
        )


def exact_split_check(
    matrix: np.ndarray,
    locals_: List[np.ndarray],
    *,
    atol: float = 1e-8,
) -> bool:
    """Return True if the local matrices sum (entrywise) to ``matrix``.

    A convenience for tests of the additive partition schemes
    (:func:`row_partition`, :func:`arbitrary_partition`,
    :func:`entrywise_partition`).
    """
    arr = check_matrix(matrix, "matrix")
    total: Optional[np.ndarray] = None
    for local in locals_:
        dense = local.toarray() if sparse.issparse(local) else np.asarray(local, dtype=float)
        total = dense if total is None else total + dense
    if total is None:
        return False
    return bool(np.allclose(total, arr, atol=atol))
