"""Strategies for splitting a logically global matrix across ``s`` servers.

The generalized partition model only requires that the global matrix is
``A_{ij} = f(sum_t A^t_{ij})``; how the local matrices arise depends on the
application.  This module provides the partition schemes used in the paper's
motivation and evaluation:

* :func:`row_partition` -- every data point (row) lives on exactly one
  server (the classic row-partition model; local matrices are sparse).
* :func:`arbitrary_partition` -- each entry is an arbitrary sum of per-server
  shares (the linear "arbitrary partition model" of Kannan-Vempala-Woodruff).
* :func:`entrywise_partition` -- every entry lives on exactly one server.
* :func:`duplicate_records_partition` -- every server holds a noisy partial
  copy of the data (the "hospital records" scenario motivating the
  softmax/max aggregation).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy import sparse

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix


def _check_num_servers(num_servers: int) -> int:
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    return int(num_servers)


def row_partition(
    matrix: np.ndarray,
    num_servers: int,
    seed: RandomState = None,
) -> List[sparse.csr_matrix]:
    """Assign each row of ``matrix`` to exactly one server, uniformly at random.

    Every local matrix has the full ``n x d`` shape but only the assigned rows
    are (potentially) nonzero; with the identity ``f`` the sum across servers
    recovers ``matrix`` exactly.

    Returns
    -------
    list of scipy.sparse.csr_matrix
        One local matrix per server.
    """
    arr = check_matrix(matrix, "matrix")
    s = _check_num_servers(num_servers)
    rng = ensure_rng(seed)
    n, _ = arr.shape
    assignment = rng.integers(0, s, size=n)
    locals_: List[sparse.csr_matrix] = []
    for t in range(s):
        mask = assignment == t
        local = sparse.csr_matrix(arr * mask[:, None])
        locals_.append(local)
    return locals_


def arbitrary_partition(
    matrix: np.ndarray,
    num_servers: int,
    seed: RandomState = None,
    share_scale: float = 1.0,
) -> List[np.ndarray]:
    """Split ``matrix`` into ``num_servers`` dense additive shares.

    The first ``s-1`` shares are independent Gaussian matrices with standard
    deviation ``share_scale * std(matrix)`` and the last share is chosen so
    the shares sum exactly to ``matrix``.  This realises the arbitrary
    (linear) partition model: no individual server's data resembles the
    global matrix.
    """
    arr = check_matrix(matrix, "matrix")
    s = _check_num_servers(num_servers)
    rng = ensure_rng(seed)
    if s == 1:
        return [arr.copy()]
    scale = float(share_scale) * (float(np.std(arr)) + 1e-12)
    shares = [rng.normal(0.0, scale, size=arr.shape) for _ in range(s - 1)]
    last = arr - np.sum(shares, axis=0)
    shares.append(last)
    return shares


def entrywise_partition(
    matrix: np.ndarray,
    num_servers: int,
    seed: RandomState = None,
) -> List[sparse.csr_matrix]:
    """Assign each entry of ``matrix`` to exactly one server, uniformly at random.

    This is the natural partition when different servers observe different
    measurements of the same record (e.g. different hospitals holding
    different indicator values for the same patient).
    """
    arr = check_matrix(matrix, "matrix")
    s = _check_num_servers(num_servers)
    rng = ensure_rng(seed)
    assignment = rng.integers(0, s, size=arr.shape)
    locals_: List[sparse.csr_matrix] = []
    for t in range(s):
        locals_.append(sparse.csr_matrix(arr * (assignment == t)))
    return locals_


def duplicate_records_partition(
    matrix: np.ndarray,
    num_servers: int,
    seed: RandomState = None,
    *,
    observation_probability: float = 0.7,
    noise_scale: float = 0.05,
    nonnegative: bool = True,
) -> List[np.ndarray]:
    """Give each server a noisy, partially-observed copy of ``matrix``.

    This models the paper's motivating "hospital records" example: each
    hospital (server) observes each indicator of each person with probability
    ``observation_probability``, possibly under-reporting it; the true value
    is best recovered by the maximum (or a softmax) across servers rather
    than a sum.

    Observed entries equal ``matrix * (1 - u)`` where ``u`` is uniform on
    ``[0, noise_scale]`` (servers may under-report, never over-report, so the
    entrywise maximum approaches the truth from below).  Unobserved entries
    are zero.  Every entry is guaranteed to be observed by at least one
    server so the maximum is never vacuous.
    """
    arr = check_matrix(matrix, "matrix")
    if nonnegative and np.any(arr < 0):
        raise ValueError("duplicate_records_partition expects a non-negative matrix")
    s = _check_num_servers(num_servers)
    if not 0 < observation_probability <= 1:
        raise ValueError(
            f"observation_probability must be in (0, 1], got {observation_probability}"
        )
    if noise_scale < 0 or noise_scale >= 1:
        raise ValueError(f"noise_scale must be in [0, 1), got {noise_scale}")
    rng = ensure_rng(seed)
    observed = rng.random(size=(s,) + arr.shape) < observation_probability
    # Guarantee each entry is observed at least once: force a random server.
    missing_everywhere = ~observed.any(axis=0)
    if np.any(missing_everywhere):
        forced = rng.integers(0, s, size=arr.shape)
        for t in range(s):
            observed[t] |= missing_everywhere & (forced == t)
    locals_: List[np.ndarray] = []
    for t in range(s):
        attenuation = 1.0 - rng.random(size=arr.shape) * noise_scale
        locals_.append(arr * attenuation * observed[t])
    return locals_


def exact_split_check(
    matrix: np.ndarray,
    locals_: List[np.ndarray],
    *,
    atol: float = 1e-8,
) -> bool:
    """Return True if the local matrices sum (entrywise) to ``matrix``.

    A convenience for tests of the additive partition schemes
    (:func:`row_partition`, :func:`arbitrary_partition`,
    :func:`entrywise_partition`).
    """
    arr = check_matrix(matrix, "matrix")
    total: Optional[np.ndarray] = None
    for local in locals_:
        dense = local.toarray() if sparse.issparse(local) else np.asarray(local, dtype=float)
        total = dense if total is None else total + dense
    if total is None:
        return False
    return bool(np.allclose(total, arr, atol=atol))
