"""``repro.obs`` -- zero-dependency telemetry: tracing, metrics, exporters.

Disabled by default.  One module-global :class:`Telemetry` capture is
either active or not; every instrumentation site in the runtime does a
single ``obs.active()`` check (one function call returning ``None``) and
falls through, so the hot loops are unperturbed when telemetry is off --
the benchmark harness gates this no-op overhead.

Instrumentation is strictly read-only with respect to the protocol: it
never consumes RNG state and never writes the charged-word ledger, so
results are bit-identical with tracing on or off (asserted by the
backend-matrix telemetry tests).

Typical use::

    from repro import obs

    with obs.capture() as telemetry:
        session.sample(weight_fn, draws=16, seed=0)
    obs.export.write_chrome_trace("trace.json", telemetry.tracer.spans())
    percentiles = telemetry.metrics.histogram("wave.seconds.collect").summary()

The CLI wires the same capture behind ``submit --trace/--metrics``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs import export
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "active",
    "enabled",
    "capture",
    "span",
    "export",
]


class Telemetry:
    """One capture: a tracer plus a metrics registry with a shared lifetime."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    def span(self, name: str, *, parent_id: Optional[int] = None, **attributes: Any):
        return self.tracer.span(name, parent_id=parent_id, **attributes)

    def snapshot(self) -> Dict[str, Any]:
        """In-process snapshot: metrics dump plus finished-span count.

        This is the API the benchmark harness reads to record latency
        percentiles next to its throughput entries.
        """
        return {"metrics": self.metrics.snapshot(), "spans": len(self.tracer)}


class _NoopSpan:
    """Shared do-nothing stand-in yielded by ``obs.span`` when disabled."""

    __slots__ = ()
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    duration_ns = 0
    duration_seconds = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


#: Single shared no-op context manager: the disabled path allocates nothing.
_NOOP_SPAN = _NoopSpan()

_lock = threading.Lock()
_active: Optional[Telemetry] = None


def enable() -> Telemetry:
    """Activate a fresh global capture; error if one is already active."""
    global _active
    with _lock:
        if _active is not None:
            raise RuntimeError("telemetry capture already active; disable() it first")
        _active = Telemetry()
        telemetry = _active
    # Every capture records which compiled-kernel provider produced its
    # numbers (an info gauge; kept in sync by set_kernel_provider).
    try:
        from repro.sketch.kernels import active_provider_name

        telemetry.metrics.gauge("kernel.provider").set(active_provider_name())
    except Exception:  # pragma: no cover - obs must work without the engine
        pass
    return telemetry


def disable() -> Optional[Telemetry]:
    """Deactivate and return the capture (None if none was active)."""
    global _active
    with _lock:
        telemetry, _active = _active, None
        return telemetry


def active() -> Optional[Telemetry]:
    """The active capture, or None.  THE hot-path check: one call, one load."""
    return _active


def enabled() -> bool:
    return _active is not None


@contextmanager
def capture() -> Iterator[Telemetry]:
    """``with obs.capture() as telemetry:`` -- enable around a block."""
    telemetry = enable()
    try:
        yield telemetry
    finally:
        disable()


def span(name: str, *, parent_id: Optional[int] = None, **attributes: Any):
    """Module-level span helper: real span when enabled, shared no-op if not."""
    telemetry = _active
    if telemetry is None:
        return _NOOP_SPAN
    return telemetry.tracer.span(name, parent_id=parent_id, **attributes)
