"""Span-based tracer: monotonic clocks, parent/child nesting, attributes.

A :class:`Span` is one timed region of the protocol (a scatter wave, a
worker round-trip, a supervisor recovery).  Spans nest: each thread keeps
an implicit stack, so ``tracer.span("wave:sketch")`` opened inside
``tracer.span("protocol:sample")`` records the sample span as its parent
automatically.  Work that hops threads (the scatter pool) passes
``parent_id`` explicitly instead -- thread-local stacks never leak across
threads.

Clocks are ``time.monotonic_ns()`` throughout: wall-clock adjustments can
never produce negative durations, and the Chrome-trace exporter only needs
deltas.  The tracer records; it never touches RNG state or the charged-word
ledger, so tracing on/off cannot perturb protocol results.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One finished (or in-flight) timed region.

    Attributes are plain JSON-compatible values supplied at ``span()``
    call sites (worker index, op name, attempt number, ...).
    """

    __slots__ = (
        "name",
        "category",
        "span_id",
        "parent_id",
        "start_ns",
        "end_ns",
        "thread_id",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        category: str,
        span_id: int,
        parent_id: Optional[int],
        start_ns: int,
        thread_id: int,
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.thread_id = thread_id
        self.attributes = attributes

    @property
    def duration_ns(self) -> int:
        """Span length in nanoseconds (0 while still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute on an open or closed span."""
        self.attributes[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration_ns}ns, attrs={self.attributes!r})"
        )


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end_ns = time.monotonic_ns()
        if exc_type is not None:
            span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop_and_record(span)
        return False


class Tracer:
    """Collects finished spans; thread-safe; unbounded within one capture.

    The tracer allocates monotonically increasing span ids and keeps a
    per-thread stack so nested ``span()`` calls pick up their parent
    implicitly.  ``current_id()`` exposes the innermost open span's id for
    call sites that fan work out to other threads and must propagate the
    parent explicitly.
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._local = threading.local()

    # -- recording ---------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        category: str = "repro",
        parent_id: Optional[int] = None,
        **attributes: Any,
    ) -> _SpanContext:
        """Open a span as a context manager; yields the :class:`Span`.

        ``parent_id=None`` nests under the current thread's innermost open
        span (if any); pass an explicit id when crossing threads.
        """
        if parent_id is None:
            parent_id = self.current_id()
        span = Span(
            name,
            category,
            next(self._ids),
            parent_id,
            time.monotonic_ns(),
            threading.get_ident(),
            dict(attributes),
        )
        return _SpanContext(self, span)

    def current_id(self) -> Optional[int]:
        """Id of this thread's innermost open span, or None at top level."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].span_id
        return None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop_and_record(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        with self._lock:
            self._finished.append(span)

    # -- inspection --------------------------------------------------------

    def spans(self) -> List[Span]:
        """Snapshot (copy) of the finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)
