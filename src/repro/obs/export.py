"""Exporters: Chrome-trace JSON, metrics JSON/text, critical-path analysis.

The trace exporter emits the Chrome Trace Event Format (complete ``"X"``
events, microsecond timestamps) so a capture opens directly in
``chrome://tracing`` / Perfetto.  Span ids, parent ids and per-span
attributes travel in ``args`` -- the format round-trips: a trace written
with :func:`write_chrome_trace` and re-read with
:func:`spans_from_chrome_trace` reconstructs the span tree exactly,
including the per-wave critical path.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "SpanView",
    "chrome_trace",
    "write_chrome_trace",
    "spans_from_chrome_trace",
    "metrics_json",
    "metrics_text",
    "write_metrics",
    "wave_critical_path",
]

#: ``args`` keys the exporter owns; everything else in ``args`` is a
#: user-supplied span attribute.
_RESERVED_ARGS = ("span_id", "parent_id")


class SpanView:
    """Read-only span reconstructed from an exported trace.

    Duck-types the subset of :class:`~repro.obs.trace.Span` that the
    analysis helpers need (name/ids/duration/attributes), so
    :func:`wave_critical_path` accepts live spans and re-loaded traces
    interchangeably.
    """

    __slots__ = ("name", "category", "span_id", "parent_id", "start_ns", "end_ns", "attributes")

    def __init__(
        self,
        name: str,
        category: str,
        span_id: int,
        parent_id: Optional[int],
        start_ns: int,
        end_ns: int,
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.attributes = attributes

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9


AnySpan = Union[Span, SpanView]


def chrome_trace(spans: Sequence[AnySpan], *, process_name: str = "repro") -> Dict[str, Any]:
    """Render finished spans as a Chrome Trace Event Format document."""
    pid = os.getpid()
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        if span.end_ns is None:  # skip spans still open at export time
            continue
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.attributes)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "pid": pid,
                "tid": getattr(span, "thread_id", 0),
                "ts": span.start_ns / 1000.0,
                "dur": (span.end_ns - span.start_ns) / 1000.0,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, spans: Sequence[AnySpan], *, process_name: str = "repro"
) -> str:
    """Write the Chrome-trace JSON for ``spans`` to ``path``; returns path."""
    document = chrome_trace(spans, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return path


def spans_from_chrome_trace(document: Union[str, Dict[str, Any]]) -> List[SpanView]:
    """Reconstruct :class:`SpanView` objects from an exported trace.

    Accepts the parsed document or its JSON text.  Only complete (``"X"``)
    events written by :func:`chrome_trace` are considered; metadata events
    are skipped.
    """
    if isinstance(document, str):
        document = json.loads(document)
    views: List[SpanView] = []
    for event in document.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        if span_id is None:
            continue
        start_ns = int(round(event["ts"] * 1000.0))
        views.append(
            SpanView(
                event["name"],
                event.get("cat", "repro"),
                int(span_id),
                int(parent_id) if parent_id is not None else None,
                start_ns,
                start_ns + int(round(event["dur"] * 1000.0)),
                args,
            )
        )
    return views


def metrics_json(registry: MetricsRegistry) -> Dict[str, Dict]:
    """JSON-compatible metrics dump (same shape as ``registry.snapshot()``)."""
    return registry.snapshot()


def metrics_text(registry: MetricsRegistry) -> str:
    """Flat ``name value`` text rendering (exposition-style, one per line)."""
    snapshot = registry.snapshot()
    lines: List[str] = []
    for name, value in snapshot["counters"].items():
        lines.append(f"{name} {value}")
    for name, value in snapshot["gauges"].items():
        lines.append(f"{name} {value}")
    for name, summary in snapshot["histograms"].items():
        for stat in ("count", "sum", "min", "max", "mean", "p50", "p95", "p99"):
            value = summary[stat]
            if value is not None:
                lines.append(f"{name}.{stat} {value}")
    return "\n".join(lines) + "\n"


def write_metrics(path: str, registry: MetricsRegistry, *, format: str = "json") -> str:
    """Write a metrics dump to ``path`` as ``json`` or ``text``."""
    if format == "json":
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(metrics_json(registry), handle, indent=1, sort_keys=True)
            handle.write("\n")
    elif format == "text":
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(metrics_text(registry))
    else:
        raise ValueError(f"unknown metrics format {format!r} (expected 'json' or 'text')")
    return path


def wave_critical_path(spans: Iterable[AnySpan]) -> List[Dict[str, Any]]:
    """Reconstruct the per-wave critical path from a span set.

    For every ``wave:<op>`` span, find its child ``worker:request`` spans
    (linked by ``parent_id``) and report which worker's round-trip bounded
    the wave.  Works on live :class:`Span` objects and on
    :class:`SpanView` objects re-loaded from an exported trace.
    """
    spans = [span for span in spans if getattr(span, "end_ns", None) is not None]
    children: Dict[int, List[AnySpan]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    waves: List[Dict[str, Any]] = []
    for span in spans:
        if not span.name.startswith("wave:"):
            continue
        requests = [
            child
            for child in children.get(span.span_id, ())
            if child.name == "worker:request"
        ]
        critical = max(requests, key=lambda r: r.duration_ns, default=None)
        waves.append(
            {
                "op": span.name[len("wave:"):],
                "span_id": span.span_id,
                "start_ns": span.start_ns,
                "wave_seconds": span.duration_seconds,
                "workers": len(requests),
                "critical_worker": (
                    critical.attributes.get("worker") if critical is not None else None
                ),
                "critical_seconds": (
                    critical.duration_seconds if critical is not None else None
                ),
            }
        )
    waves.sort(key=lambda wave: wave["start_ns"])
    return waves
