"""Counters, gauges and histograms with p50/p95/p99 snapshots.

The registry is a flat namespace of dotted metric names
(``words.<tag>``, ``wave.seconds.<op>``, ``supervisor.restarts`` ...).
Instruments are created on first touch and accumulate until the owning
:class:`~repro.obs.Telemetry` capture ends; ``snapshot()`` renders
everything to plain JSON-compatible dicts for the exporters and the
benchmark harness.

All instruments are thread-safe (the scatter pool and supervisor monitor
observe concurrently).  Histograms keep the most recent
``max_samples`` raw observations in a ring buffer -- percentiles are
exact over that window while ``count``/``sum``/``min``/``max`` cover the
full lifetime -- so an always-on capture cannot grow without bound.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing integer/float total."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: Union[int, float] = 0

    def add(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Union[int, float]:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins instantaneous value.

    Values are numeric for measurements or strings for *info*-style
    gauges (e.g. ``kernel.provider`` records the active compiled-kernel
    provider's name); both render unchanged into JSON snapshots.
    """

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: Union[int, float, str] = 0

    def set(self, value: Union[int, float, str]) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> Union[int, float, str]:
        with self._lock:
            return self._value


class Histogram:
    """Distribution with exact percentiles over a bounded recent window."""

    __slots__ = ("name", "_lock", "_window", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._window: Deque[float] = deque(maxlen=max_samples)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> Optional[float]:
        """Exact q-th percentile (0..100) of the retained window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            values = sorted(self._window)
        if not values:
            return None
        # Nearest-rank on the sorted window: deterministic, no interpolation.
        rank = max(0, min(len(values) - 1, round(q / 100.0 * (len(values) - 1))))
        return values[rank]

    def summary(self) -> Dict[str, Optional[float]]:
        with self._lock:
            count, total = self._count, self._sum
            low, high = self._min, self._max
        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "mean": (total / count) if count else None,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name -> instrument map; instruments are created on first touch."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot re-register as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, "counter")
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, "gauge")
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, "histogram")
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def counters_with_prefix(self, prefix: str) -> Dict[str, Union[int, float]]:
        """``{suffix: value}`` for every counter named ``<prefix><suffix>``.

        The cross-check of per-tag charged-word metrics against the session
        ledger reads ``counters_with_prefix("words.")``.
        """
        with self._lock:
            items: List[Tuple[str, Counter]] = [
                (name, counter)
                for name, counter in self._counters.items()
                if name.startswith(prefix)
            ]
        return {name[len(prefix):]: counter.value for name, counter in items}

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-compatible dump of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(histograms.items())},
        }
