"""Serializable, mergeable sketch state (the runtime's unit of exchange).

A sketch *object* (hash functions + caches) and a sketch *table* (the numpy
array a server ships) are deliberately separate in the sketch layer.  The
state classes here bind the two back together for the wire: hash
coefficients + table travel as one value that can be

* **serialised** -- ``to_bytes`` / ``from_bytes`` round-trip exactly through
  :mod:`repro.runtime.wire`;
* **merged** -- CountSketch tables are linear in the input, so the sketch of
  ``v + w`` is the entrywise sum of the sketches of ``v`` and ``w``.
  :meth:`CountSketchState.merge` implements exactly that addition after
  verifying both sides share the same hash coefficients and geometry;
  mismatched coefficients raise
  :class:`~repro.core.errors.SketchCompatibilityError` instead of silently
  adding incomparable tables.

Merge contract
--------------
``merge`` is plain table addition.  For shards of a data stream (time
slices, server subsets) the merged table equals the table of the
concatenated input up to float-addition associativity; when the additions
are exact -- integer-weighted streams, the classic frequency-sketch setting
-- the merged table is **bit-identical** to sketching the concatenation in
one pass (asserted by ``tests/test_runtime_wire.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import SketchCompatibilityError, WireFormatError
from repro.runtime import wire

if TYPE_CHECKING:  # pragma: no cover - layering: distributed imports stay lazy
    from repro.distributed.partition import ShardAssignment


def _as_uint64(array: np.ndarray, shape: tuple, name: str) -> np.ndarray:
    out = np.asarray(array, dtype=np.uint64)
    if out.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {out.shape}")
    return out


def _check_label(buf_label: object, expected: str) -> None:
    if buf_label != expected:
        raise WireFormatError(
            f"buffer does not hold a {expected} state (found {buf_label!r})"
        )


@dataclass(eq=False)
class CountSketchState:
    """Hash coefficients + one table of a single CountSketch."""

    depth: int
    width: int
    domain: int
    bucket_coeffs: np.ndarray  #: ``(depth, 2)`` uint64
    sign_coeffs: np.ndarray  #: ``(depth, 4)`` uint64
    table: np.ndarray  #: ``(depth, width)`` float64

    _LABEL = "countsketch-state"

    def __post_init__(self) -> None:
        self.depth, self.width, self.domain = int(self.depth), int(self.width), int(self.domain)
        self.bucket_coeffs = _as_uint64(self.bucket_coeffs, (self.depth, 2), "bucket_coeffs")
        self.sign_coeffs = _as_uint64(self.sign_coeffs, (self.depth, 4), "sign_coeffs")
        self.table = np.asarray(self.table, dtype=float)
        if self.table.shape != (self.depth, self.width):
            raise ValueError(
                f"table must have shape ({self.depth}, {self.width}), got {self.table.shape}"
            )

    # -------------------------------------------------------------- #
    # merging
    # -------------------------------------------------------------- #
    def compatible_with(self, other: "CountSketchState") -> bool:
        """True when both states came from the same hash functions and geometry."""
        return (
            isinstance(other, CountSketchState)
            and (self.depth, self.width, self.domain)
            == (other.depth, other.width, other.domain)
            and np.array_equal(self.bucket_coeffs, other.bucket_coeffs)
            and np.array_equal(self.sign_coeffs, other.sign_coeffs)
        )

    def require_compatible(self, other: "CountSketchState") -> None:
        if not isinstance(other, CountSketchState):
            raise SketchCompatibilityError(
                f"cannot merge CountSketchState with {type(other).__name__}"
            )
        if (self.depth, self.width, self.domain) != (other.depth, other.width, other.domain):
            raise SketchCompatibilityError(
                "sketch geometries differ: "
                f"(depth={self.depth}, width={self.width}, domain={self.domain}) vs "
                f"(depth={other.depth}, width={other.width}, domain={other.domain})"
            )
        if not np.array_equal(self.bucket_coeffs, other.bucket_coeffs) or not np.array_equal(
            self.sign_coeffs, other.sign_coeffs
        ):
            raise SketchCompatibilityError(
                "hash coefficients differ: tables sketched by different hash "
                "functions are not comparable and must not be added"
            )

    def merge(self, other: "CountSketchState") -> "CountSketchState":
        """Return the merged state (tables add; coefficients must match)."""
        self.require_compatible(other)
        return CountSketchState(
            depth=self.depth,
            width=self.width,
            domain=self.domain,
            bucket_coeffs=self.bucket_coeffs,
            sign_coeffs=self.sign_coeffs,
            table=self.table + other.table,
        )

    @classmethod
    def merge_all(cls, states: Sequence["CountSketchState"]) -> "CountSketchState":
        """Left-fold merge of one or more states."""
        if len(states) == 0:
            raise ValueError("need at least one state to merge")
        merged = states[0]
        for state in states[1:]:
            merged = merged.merge(state)
        return merged

    # -------------------------------------------------------------- #
    # conversions
    # -------------------------------------------------------------- #
    def make_sketch(self):
        """Rebuild a :class:`~repro.sketch.countsketch.CountSketch` for queries."""
        from repro.sketch.countsketch import CountSketch

        return CountSketch.from_coefficients(
            self.bucket_coeffs.astype(np.int64),
            self.sign_coeffs.astype(np.int64),
            self.domain,
            self.width,
        )

    def word_count(self) -> int:
        """Wire words of this state (coefficients + table + geometry)."""
        return 3 + self.bucket_coeffs.size + self.sign_coeffs.size + self.table.size

    def equals(self, other: "CountSketchState") -> bool:
        """Exact (bitwise) equality of every field -- used by round-trip tests."""
        return self.compatible_with(other) and np.array_equal(
            self.table, other.table, equal_nan=True
        )

    def _as_payload(self) -> tuple:
        return (
            self._LABEL,
            self.depth,
            self.width,
            self.domain,
            self.bucket_coeffs,
            self.sign_coeffs,
            self.table,
        )

    def to_bytes(self) -> bytes:
        """Serialise with the versioned wire codec."""
        return wire.to_bytes(self._as_payload())

    @classmethod
    def from_bytes(cls, buf: bytes) -> "CountSketchState":
        """Exact inverse of :meth:`to_bytes`."""
        payload = wire.from_bytes(buf)
        _check_label(payload[0], cls._LABEL)
        _, depth, width, domain, bucket, sign, table = payload
        return cls(depth, width, domain, bucket, sign, table)


@dataclass(eq=False)
class BatchedSketchState:
    """Coefficient tensors + table stack of a whole per-bucket sketch family."""

    num_buckets: int
    depth: int
    width: int
    domain: int
    bucket_coeffs: np.ndarray  #: ``(num_buckets, depth, 2)`` uint64
    sign_coeffs: np.ndarray  #: ``(num_buckets, depth, 4)`` uint64
    tables: np.ndarray  #: ``(num_buckets, depth, width)`` float64

    _LABEL = "batched-sketch-state"

    def __post_init__(self) -> None:
        self.num_buckets = int(self.num_buckets)
        self.depth, self.width, self.domain = int(self.depth), int(self.width), int(self.domain)
        self.bucket_coeffs = _as_uint64(
            self.bucket_coeffs, (self.num_buckets, self.depth, 2), "bucket_coeffs"
        )
        self.sign_coeffs = _as_uint64(
            self.sign_coeffs, (self.num_buckets, self.depth, 4), "sign_coeffs"
        )
        self.tables = np.asarray(self.tables, dtype=float)
        if self.tables.shape != (self.num_buckets, self.depth, self.width):
            raise ValueError(
                f"tables must have shape ({self.num_buckets}, {self.depth}, "
                f"{self.width}), got {self.tables.shape}"
            )

    def compatible_with(self, other: "BatchedSketchState") -> bool:
        """True when both families share coefficients and geometry."""
        return (
            isinstance(other, BatchedSketchState)
            and (self.num_buckets, self.depth, self.width, self.domain)
            == (other.num_buckets, other.depth, other.width, other.domain)
            and np.array_equal(self.bucket_coeffs, other.bucket_coeffs)
            and np.array_equal(self.sign_coeffs, other.sign_coeffs)
        )

    def require_compatible(self, other: "BatchedSketchState") -> None:
        if not isinstance(other, BatchedSketchState):
            raise SketchCompatibilityError(
                f"cannot merge BatchedSketchState with {type(other).__name__}"
            )
        if (self.num_buckets, self.depth, self.width, self.domain) != (
            other.num_buckets,
            other.depth,
            other.width,
            other.domain,
        ):
            raise SketchCompatibilityError(
                "batched sketch geometries differ: "
                f"({self.num_buckets}, {self.depth}, {self.width}, {self.domain}) vs "
                f"({other.num_buckets}, {other.depth}, {other.width}, {other.domain})"
            )
        if not np.array_equal(self.bucket_coeffs, other.bucket_coeffs) or not np.array_equal(
            self.sign_coeffs, other.sign_coeffs
        ):
            raise SketchCompatibilityError(
                "hash coefficients differ between the batched families"
            )

    def merge(self, other: "BatchedSketchState") -> "BatchedSketchState":
        """Return the merged family state (table stacks add)."""
        self.require_compatible(other)
        return BatchedSketchState(
            num_buckets=self.num_buckets,
            depth=self.depth,
            width=self.width,
            domain=self.domain,
            bucket_coeffs=self.bucket_coeffs,
            sign_coeffs=self.sign_coeffs,
            tables=self.tables + other.tables,
        )

    @classmethod
    def merge_all(cls, states: Sequence["BatchedSketchState"]) -> "BatchedSketchState":
        """Left-fold merge of one or more family states."""
        if len(states) == 0:
            raise ValueError("need at least one state to merge")
        merged = states[0]
        for state in states[1:]:
            merged = merged.merge(state)
        return merged

    def member_state(self, bucket: int) -> CountSketchState:
        """Return bucket ``bucket``'s member as a standalone state."""
        if not 0 <= bucket < self.num_buckets:
            raise IndexError(f"bucket must be in [0, {self.num_buckets - 1}]")
        return CountSketchState(
            depth=self.depth,
            width=self.width,
            domain=self.domain,
            bucket_coeffs=self.bucket_coeffs[bucket],
            sign_coeffs=self.sign_coeffs[bucket],
            table=self.tables[bucket],
        )

    def make_sketch(self):
        """Rebuild the :class:`~repro.sketch.countsketch.BatchedCountSketch`."""
        from repro.sketch.countsketch import BatchedCountSketch

        return BatchedCountSketch.from_coefficients(
            self.bucket_coeffs.astype(np.int64),
            self.sign_coeffs.astype(np.int64),
            self.domain,
            self.width,
        )

    def word_count(self) -> int:
        """Wire words of this state (coefficients + tables + geometry)."""
        return 4 + self.bucket_coeffs.size + self.sign_coeffs.size + self.tables.size

    def equals(self, other: "BatchedSketchState") -> bool:
        """Exact equality of every field -- used by round-trip tests."""
        return self.compatible_with(other) and np.array_equal(
            self.tables, other.tables, equal_nan=True
        )

    def _as_payload(self) -> tuple:
        return (
            self._LABEL,
            self.num_buckets,
            self.depth,
            self.width,
            self.domain,
            self.bucket_coeffs,
            self.sign_coeffs,
            self.tables,
        )

    def to_bytes(self) -> bytes:
        """Serialise with the versioned wire codec."""
        return wire.to_bytes(self._as_payload())

    @classmethod
    def from_bytes(cls, buf: bytes) -> "BatchedSketchState":
        """Exact inverse of :meth:`to_bytes`."""
        payload = wire.from_bytes(buf)
        _check_label(payload[0], cls._LABEL)
        _, num_buckets, depth, width, domain, bucket, sign, tables = payload
        return cls(num_buckets, depth, width, domain, bucket, sign, tables)


@dataclass(eq=False)
class HeavyHitterSummary:
    """A shardable heavy-hitters result: linear sketch state + candidates.

    ``state`` is the merged CountSketch of the shard and ``candidates`` /
    ``estimates`` the coordinates that cleared ``F_2 / b`` on that shard.
    Merging keeps the *linear* part exact (tables add) and re-extracts the
    candidate set from the merged table over the union of both shards'
    candidates; call :meth:`extract` with an explicit candidate universe to
    re-derive candidates over any sub-universe of interest (a coordinate
    light in every shard but heavy in the union is only found that way).
    """

    state: CountSketchState
    b: float
    candidates: np.ndarray
    estimates: np.ndarray
    f2_estimate: float

    _LABEL = "heavy-hitter-summary"

    def __post_init__(self) -> None:
        self.b = float(self.b)
        if self.b <= 0:
            raise ValueError(f"b must be positive, got {self.b}")
        self.candidates = np.asarray(self.candidates, dtype=np.int64)
        self.estimates = np.asarray(self.estimates, dtype=float)
        if self.candidates.shape != self.estimates.shape or self.candidates.ndim != 1:
            raise ValueError("candidates and estimates must be matching 1-D arrays")
        self.f2_estimate = float(self.f2_estimate)

    @classmethod
    def build(
        cls,
        sketch,
        table: np.ndarray,
        b: float,
        candidate_indices: Optional[np.ndarray] = None,
        max_candidates: Optional[int] = None,
    ) -> "HeavyHitterSummary":
        """Extract a summary from a sketch + table over ``candidate_indices``."""
        from repro.sketch.heavy_hitters import _select_heavy

        if candidate_indices is None:
            query = np.arange(sketch.domain, dtype=np.int64)
        else:
            query = np.unique(np.asarray(candidate_indices, dtype=np.int64))
        candidates, estimates, f2 = _select_heavy(sketch, np.asarray(table, dtype=float), b, query, max_candidates)
        return cls(
            state=sketch.export_state(table),
            b=b,
            candidates=candidates,
            estimates=estimates,
            f2_estimate=f2,
        )

    def extract(
        self,
        candidate_indices: Optional[np.ndarray] = None,
        max_candidates: Optional[int] = None,
    ) -> "HeavyHitterSummary":
        """Re-derive candidates from this summary's table over a fresh universe."""
        return HeavyHitterSummary.build(
            self.state.make_sketch(),
            self.state.table,
            self.b,
            candidate_indices=candidate_indices,
            max_candidates=max_candidates,
        )

    def merge(self, other: "HeavyHitterSummary") -> "HeavyHitterSummary":
        """Merge two shard summaries (exact linear merge + candidate re-extraction)."""
        if not isinstance(other, HeavyHitterSummary):
            raise SketchCompatibilityError(
                f"cannot merge HeavyHitterSummary with {type(other).__name__}"
            )
        if self.b != other.b:
            raise SketchCompatibilityError(
                f"heaviness thresholds differ: b={self.b} vs b={other.b}"
            )
        merged_state = self.state.merge(other.state)
        union = np.union1d(self.candidates, other.candidates)
        sketch = merged_state.make_sketch()
        from repro.sketch.heavy_hitters import _select_heavy

        candidates, estimates, f2 = _select_heavy(
            sketch, merged_state.table, self.b, union, None
        )
        return HeavyHitterSummary(
            state=merged_state,
            b=self.b,
            candidates=candidates,
            estimates=estimates,
            f2_estimate=f2,
        )

    def word_count(self) -> int:
        """Wire words of this summary."""
        return self.state.word_count() + 2 + self.candidates.size + self.estimates.size

    def equals(self, other: "HeavyHitterSummary") -> bool:
        """Exact equality of every field -- used by round-trip tests."""
        return (
            self.state.equals(other.state)
            and self.b == other.b
            and np.array_equal(self.candidates, other.candidates)
            and np.array_equal(self.estimates, other.estimates, equal_nan=True)
            and self.f2_estimate == other.f2_estimate
        )

    def _as_payload(self) -> tuple:
        return (
            self._LABEL,
            self.state._as_payload(),
            self.b,
            self.candidates,
            self.estimates,
            self.f2_estimate,
        )

    def to_bytes(self) -> bytes:
        """Serialise with the versioned wire codec."""
        return wire.to_bytes(self._as_payload())

    @classmethod
    def from_bytes(cls, buf: bytes) -> "HeavyHitterSummary":
        """Exact inverse of :meth:`to_bytes`."""
        payload = wire.from_bytes(buf)
        _check_label(payload[0], cls._LABEL)
        _, state_payload, b, candidates, estimates, f2 = payload
        _check_label(state_payload[0], CountSketchState._LABEL)
        state = CountSketchState(*state_payload[1:])
        return cls(state, b, candidates, estimates, f2)


@dataclass(eq=False)
class ZEstimateState:
    """Serializable snapshot of a :class:`~repro.sketch.z_estimator.ZEstimate`."""

    z_total: float
    epsilon: float
    words_used: int
    levels_used: int
    class_sizes: Dict[int, float]
    class_members: Dict[int, np.ndarray]
    member_values: Dict[int, float]
    subsample_domain_scale: Optional[int] = None
    subsample_coefficients: Optional[np.ndarray] = None

    _LABEL = "z-estimate-state"

    @classmethod
    def from_estimate(cls, estimate) -> "ZEstimateState":
        """Snapshot ``estimate`` (see :meth:`ZEstimate.export_state`)."""
        subsample = estimate.subsample_hash
        return cls(
            z_total=float(estimate.z_total),
            epsilon=float(estimate.epsilon),
            words_used=int(estimate.words_used),
            levels_used=int(estimate.levels_used),
            class_sizes={int(k): float(v) for k, v in estimate.class_sizes.items()},
            class_members={
                int(k): np.asarray(v, dtype=np.int64)
                for k, v in estimate.class_members.items()
            },
            member_values={int(k): float(v) for k, v in estimate.member_values.items()},
            subsample_domain_scale=(
                int(subsample.domain_scale) if subsample is not None else None
            ),
            subsample_coefficients=(
                np.asarray(subsample.coefficients, dtype=np.int64)
                if subsample is not None
                else None
            ),
        )

    def to_estimate(self):
        """Rebuild an equivalent :class:`~repro.sketch.z_estimator.ZEstimate`."""
        from repro.sketch.hashing import SubsampleHash
        from repro.sketch.z_estimator import ZEstimate

        subsample = None
        if self.subsample_coefficients is not None:
            subsample = SubsampleHash.from_coefficients(
                self.subsample_domain_scale, self.subsample_coefficients
            )
        return ZEstimate(
            z_total=self.z_total,
            class_sizes=dict(self.class_sizes),
            class_members={k: v.copy() for k, v in self.class_members.items()},
            member_values=dict(self.member_values),
            epsilon=self.epsilon,
            words_used=self.words_used,
            levels_used=self.levels_used,
            subsample_hash=subsample,
        )

    def equals(self, other: "ZEstimateState") -> bool:
        """Exact equality of every field -- used by round-trip tests."""
        if not isinstance(other, ZEstimateState):
            return False
        if (
            self.z_total != other.z_total
            or self.epsilon != other.epsilon
            or self.words_used != other.words_used
            or self.levels_used != other.levels_used
            or self.class_sizes != other.class_sizes
            or self.member_values != other.member_values
            or self.subsample_domain_scale != other.subsample_domain_scale
        ):
            return False
        if set(self.class_members) != set(other.class_members):
            return False
        if any(
            not np.array_equal(self.class_members[k], other.class_members[k])
            for k in self.class_members
        ):
            return False
        if (self.subsample_coefficients is None) != (other.subsample_coefficients is None):
            return False
        return self.subsample_coefficients is None or np.array_equal(
            self.subsample_coefficients, other.subsample_coefficients
        )

    def _as_payload(self) -> tuple:
        return (
            self._LABEL,
            self.z_total,
            self.epsilon,
            self.words_used,
            self.levels_used,
            self.class_sizes,
            self.class_members,
            self.member_values,
            self.subsample_domain_scale,
            self.subsample_coefficients,
        )

    def to_bytes(self) -> bytes:
        """Serialise with the versioned wire codec."""
        return wire.to_bytes(self._as_payload())

    @classmethod
    def from_bytes(cls, buf: bytes) -> "ZEstimateState":
        """Exact inverse of :meth:`to_bytes`."""
        payload = wire.from_bytes(buf)
        _check_label(payload[0], cls._LABEL)
        (
            _,
            z_total,
            epsilon,
            words_used,
            levels_used,
            class_sizes,
            class_members,
            member_values,
            domain_scale,
            coefficients,
        ) = payload
        return cls(
            z_total=z_total,
            epsilon=epsilon,
            words_used=words_used,
            levels_used=levels_used,
            class_sizes=class_sizes,
            class_members=class_members,
            member_values=member_values,
            subsample_domain_scale=domain_scale,
            subsample_coefficients=coefficients,
        )


@dataclass(eq=False)
class WorkerCheckpoint:
    """One worker's recoverable per-session state, as one serializable value.

    The supervision layer's unit of exchange: the worker's current sparse
    component *verbatim* (array order preserved -- float scatter-adds are
    order-sensitive, so restoring a reordered component would break the
    bit-identity contract), the session's exactly-once update ledger entry
    ``(seq, count, index_sum, value_sum)``, and the session's cached
    stream-sketch states.  Installing a checkpoint on a fresh worker and
    replaying the journaled post-checkpoint frames reproduces the lost
    worker's state bit-for-bit (the ledger makes replayed updates
    exactly-once).  Checkpoints travel as *untagged* frame entries: pure
    control plane, never charged to the word model.
    """

    dimension: int
    indices: np.ndarray
    values: np.ndarray
    session: str
    applied_update: Optional[Tuple[int, int, int, float]] = None
    stream_states: Dict[str, CountSketchState] = field(default_factory=dict)

    _LABEL = "worker-checkpoint"

    def __post_init__(self) -> None:
        self.dimension = int(self.dimension)
        if self.dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {self.dimension}")
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=float)
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise ValueError(
                "checkpoint indices and values must be matching 1-D arrays"
            )
        self.session = str(self.session)
        if self.applied_update is not None:
            seq, count, index_sum, value_sum = self.applied_update
            self.applied_update = (int(seq), int(count), int(index_sum), float(value_sum))
        self.stream_states = {
            str(stream): state for stream, state in dict(self.stream_states).items()
        }
        for stream, state in self.stream_states.items():
            if not isinstance(state, CountSketchState):
                raise ValueError(
                    f"stream {stream!r} must map to a CountSketchState, "
                    f"got {type(state).__name__}"
                )

    @property
    def support(self) -> int:
        """Number of stored (index, value) pairs."""
        return int(self.indices.size)

    def word_count(self) -> int:
        """Wire words of this checkpoint (component + ledger + states)."""
        words = 2 + self.indices.size + self.values.size
        if self.applied_update is not None:
            words += 4
        for state in self.stream_states.values():
            words += state.word_count()
        return words

    def equals(self, other: "WorkerCheckpoint") -> bool:
        """Exact (bitwise) equality of every field -- used by round-trip tests."""
        return (
            isinstance(other, WorkerCheckpoint)
            and self.dimension == other.dimension
            and self.session == other.session
            and self.applied_update == other.applied_update
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values, equal_nan=True)
            and set(self.stream_states) == set(other.stream_states)
            and all(
                state.equals(other.stream_states[stream])
                for stream, state in self.stream_states.items()
            )
        )

    def _as_payload(self) -> tuple:
        return (
            self._LABEL,
            self.dimension,
            self.indices,
            self.values,
            self.session,
            self.applied_update,
            {
                stream: state._as_payload()
                for stream, state in self.stream_states.items()
            },
        )

    @classmethod
    def from_payload(cls, payload) -> "WorkerCheckpoint":
        """Rebuild from a decoded frame entry (inverse of ``_as_payload``)."""
        _check_label(payload[0], cls._LABEL)
        _, dimension, indices, values, session, applied, streams = payload
        states = {}
        for stream, state_payload in streams.items():
            _check_label(state_payload[0], CountSketchState._LABEL)
            states[stream] = CountSketchState(*state_payload[1:])
        return cls(
            dimension=dimension,
            indices=indices,
            values=values,
            session=session,
            applied_update=applied,
            stream_states=states,
        )

    def to_bytes(self) -> bytes:
        """Serialise with the versioned wire codec."""
        return wire.to_bytes(self._as_payload())

    @classmethod
    def from_bytes(cls, buf: bytes) -> "WorkerCheckpoint":
        """Exact inverse of :meth:`to_bytes`."""
        return cls.from_payload(wire.from_bytes(buf))


@dataclass(eq=False)
class ShardedWorkerCheckpoint:
    """A sharded logical server's checkpoint: the shard map + one checkpoint per shard.

    The sharded backend presents K worker shards as one logical server; its
    ``checkpoint`` op bundles the per-shard :class:`WorkerCheckpoint` values
    together with the :class:`~repro.distributed.partition.ShardAssignment`
    that produced them, so a restore rebuilds both the shard states *and*
    the coordinate map they were split by (a rebalanced layout survives a
    respawn).  The flattened ``indices``/``values`` views expose the logical
    component for degraded estimates, exactly like an unsharded checkpoint.
    """

    assignment: "ShardAssignment"
    shards: List["WorkerCheckpoint"]

    _LABEL = "sharded-worker-checkpoint"

    def __post_init__(self) -> None:
        from repro.distributed.partition import ShardAssignment

        if not isinstance(self.assignment, ShardAssignment):
            raise ValueError(
                f"assignment must be a ShardAssignment, got {type(self.assignment).__name__}"
            )
        self.shards = list(self.shards)
        if len(self.shards) != self.assignment.num_shards:
            raise ValueError(
                f"expected {self.assignment.num_shards} shard checkpoints, "
                f"got {len(self.shards)}"
            )
        for shard in self.shards:
            if not isinstance(shard, WorkerCheckpoint):
                raise ValueError(
                    f"shards must be WorkerCheckpoint values, got {type(shard).__name__}"
                )
            if shard.dimension != self.assignment.dimension:
                raise ValueError(
                    f"shard dimension {shard.dimension} does not match the "
                    f"assignment's dimension {self.assignment.dimension}"
                )
        if len({shard.session for shard in self.shards}) > 1:
            raise ValueError("shard checkpoints belong to different sessions")

    @property
    def dimension(self) -> int:
        return self.assignment.dimension

    @property
    def session(self) -> str:
        return self.shards[0].session

    @property
    def indices(self) -> np.ndarray:
        """The logical component's indices (shard order, then storage order)."""
        return np.concatenate([shard.indices for shard in self.shards])

    @property
    def values(self) -> np.ndarray:
        """The logical component's values, aligned with :attr:`indices`."""
        return np.concatenate([shard.values for shard in self.shards])

    @property
    def support(self) -> int:
        """Total stored (index, value) pairs across shards."""
        return sum(shard.support for shard in self.shards)

    def word_count(self) -> int:
        """Wire words of this checkpoint (map + every shard checkpoint)."""
        words = 2 + self.assignment.boundaries.size
        for shard in self.shards:
            words += shard.word_count()
        return words

    def equals(self, other: "ShardedWorkerCheckpoint") -> bool:
        """Exact equality of the map and every shard -- used by round-trip tests."""
        return (
            isinstance(other, ShardedWorkerCheckpoint)
            and self.assignment.same_as(other.assignment)
            and len(self.shards) == len(other.shards)
            and all(
                mine.equals(theirs)
                for mine, theirs in zip(self.shards, other.shards)
            )
        )

    def _as_payload(self) -> tuple:
        return (
            self._LABEL,
            self.assignment._as_payload(),
            [shard._as_payload() for shard in self.shards],
        )

    @classmethod
    def from_payload(cls, payload) -> "ShardedWorkerCheckpoint":
        """Rebuild from a decoded frame entry (inverse of ``_as_payload``)."""
        from repro.distributed.partition import ShardAssignment

        _check_label(payload[0], cls._LABEL)
        _, assignment_payload, shard_payloads = payload
        return cls(
            assignment=ShardAssignment.from_payload(assignment_payload),
            shards=[
                WorkerCheckpoint.from_payload(shard) for shard in shard_payloads
            ],
        )

    def to_bytes(self) -> bytes:
        """Serialise with the versioned wire codec."""
        return wire.to_bytes(self._as_payload())

    @classmethod
    def from_bytes(cls, buf: bytes) -> "ShardedWorkerCheckpoint":
        """Exact inverse of :meth:`to_bytes`."""
        return cls.from_payload(wire.from_bytes(buf))


def checkpoint_from_payload(payload):
    """Rebuild whichever checkpoint type ``payload`` holds (label dispatch).

    The supervisor is agnostic to sharding: a logical server answers its
    ``checkpoint`` op with either a plain :class:`WorkerCheckpoint` or a
    :class:`ShardedWorkerCheckpoint`, and this dispatcher picks the right
    decoder so recovery code needs no backend-specific branches.
    """
    label = payload[0] if isinstance(payload, (tuple, list)) and payload else None
    if label == WorkerCheckpoint._LABEL:
        return WorkerCheckpoint.from_payload(payload)
    if label == ShardedWorkerCheckpoint._LABEL:
        return ShardedWorkerCheckpoint.from_payload(payload)
    raise WireFormatError(f"payload does not hold a worker checkpoint ({label!r})")
