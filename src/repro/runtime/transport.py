"""Pluggable transports: how coordinator frames reach a worker and back.

A :class:`Transport` is one coordinator-side channel to a single worker
with blocking request/reply semantics -- exactly the shape of the star
topology the paper assumes (every protocol message either flows to or from
the Central Processor).  Two implementations are provided:

* :class:`LoopbackTransport` -- calls the worker's frame handler in
  process.  Zero I/O, used by tests and by deployments that co-locate
  workers; the byte accounting is identical to the TCP path because frames
  are still fully encoded and decoded.
* :class:`TcpTransport` / :class:`WorkerServer` -- an asyncio TCP
  client/server pair moving length-prefixed frames over real sockets.

The framing on the socket is an 8-byte big-endian length prefix followed by
one :mod:`repro.runtime.wire` frame.  The prefix is transport overhead (it
is never part of the word accounting, like TCP/IP headers themselves).
"""

from __future__ import annotations

import abc
import asyncio
import threading
from typing import Callable, Optional, Tuple

from repro.core.errors import WireFormatError

#: Upper bound on one frame; guards against garbage length prefixes.
MAX_FRAME_BYTES = 1 << 31

#: Bytes of the length prefix on the socket.
LENGTH_PREFIX_BYTES = 8

#: A worker-side frame handler: one encoded request in, one encoded reply out.
FrameHandler = Callable[[bytes], bytes]


class Transport(abc.ABC):
    """One coordinator-side channel to a single worker (request/reply)."""

    @abc.abstractmethod
    def request(self, frame: bytes) -> bytes:
        """Deliver ``frame`` to the worker and return its reply frame."""

    def close(self) -> None:
        """Release transport resources (idempotent)."""


class LoopbackTransport(Transport):
    """In-memory transport: the worker's handler runs in the calling process.

    Frames are passed as immutable ``bytes`` exactly as a socket would
    deliver them, so encoding, decoding and byte accounting behave
    identically to the TCP transport.
    """

    def __init__(self, handler: FrameHandler) -> None:
        self._handler = handler
        self._closed = False

    def request(self, frame: bytes) -> bytes:
        if self._closed:
            raise RuntimeError("transport is closed")
        return bytes(self._handler(bytes(frame)))

    def close(self) -> None:
        self._closed = True


def _prefix(frame: bytes) -> bytes:
    if len(frame) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame of {len(frame)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return len(frame).to_bytes(LENGTH_PREFIX_BYTES, "big")


class TcpTransport(Transport):
    """Asyncio TCP client speaking length-prefixed wire frames.

    The transport owns a private event loop so the (synchronous) protocol
    code can issue blocking requests; one connection is opened eagerly at
    construction and reused for every request.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._timeout = float(timeout)
        self._loop = asyncio.new_event_loop()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader, self._writer = self._run(
            asyncio.wait_for(asyncio.open_connection(host, port), self._timeout)
        )

    def _run(self, coroutine):
        return self._loop.run_until_complete(coroutine)

    async def _roundtrip(self, frame: bytes) -> bytes:
        self._writer.write(_prefix(frame) + frame)
        await self._writer.drain()
        header = await self._reader.readexactly(LENGTH_PREFIX_BYTES)
        length = int.from_bytes(header, "big")
        if length > MAX_FRAME_BYTES:
            raise WireFormatError(f"peer announced an oversized {length}-byte frame")
        return await self._reader.readexactly(length)

    def request(self, frame: bytes) -> bytes:
        if self._writer is None:
            raise RuntimeError("transport is closed")
        try:
            return self._run(asyncio.wait_for(self._roundtrip(frame), self._timeout))
        except Exception:
            # A timed-out or failed round-trip may leave a half-read reply in
            # the stream; the next request would read the previous op's
            # answer.  Poison the connection instead of desynchronizing.
            self.close()
            raise

    def close(self) -> None:
        if self._writer is not None:
            writer, self._writer, self._reader = self._writer, None, None
            try:
                writer.close()
                self._run(writer.wait_closed())
            except (ConnectionError, OSError):
                pass
        if not self._loop.is_closed():
            self._loop.close()


class WorkerServer:
    """Asyncio TCP server exposing one frame handler to remote coordinators.

    ``start()`` binds the socket on a background thread and returns the
    bound ``(host, port)`` (``port=0`` picks a free port); ``wait()`` blocks
    until the server stops -- either via :meth:`stop` or, when
    ``stop_check`` returns True after a request (e.g. the worker saw a
    ``shutdown`` op), on its own.
    """

    def __init__(
        self,
        handler: FrameHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        stop_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        self._handler = handler
        self._host = host
        self._port = int(port)
        self._stop_check = stop_check
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    async def _serve_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                header = await reader.readexactly(LENGTH_PREFIX_BYTES)
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    raise WireFormatError(
                        f"peer announced an oversized {length}-byte frame"
                    )
                frame = await reader.readexactly(length)
                reply = self._handler(frame)
                writer.write(_prefix(reply) + reply)
                await writer.drain()
                if self._stop_check is not None and self._stop_check():
                    self._loop.call_soon(self._loop.stop)
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._serve_client, self._host, self._port)
            )
        except BaseException as exc:  # bind failures surface in start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.close()

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a background thread; return ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self._host, self._port

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        return self._port

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the server thread exits."""
        if self._thread is not None:
            self._thread.join(timeout)

    def stop(self) -> None:
        """Stop the event loop and join the server thread (idempotent)."""
        if self._loop is not None and not self._loop.is_closed():
            try:
                # Also valid before run_forever() starts: the callback is
                # queued and executed as soon as the loop runs, closing the
                # start()/stop() race window.
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:  # pragma: no cover - loop closed concurrently
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
