"""Pluggable transports: how coordinator frames reach a worker and back.

A :class:`Transport` is one coordinator-side channel to a single worker
with blocking request/reply semantics -- exactly the shape of the star
topology the paper assumes (every protocol message either flows to or from
the Central Processor).  Two implementations are provided:

* :class:`LoopbackTransport` -- calls the worker's frame handler in
  process.  Zero I/O, used by tests and by deployments that co-locate
  workers; the byte accounting is identical to the TCP path because frames
  are still fully encoded and decoded.
* :class:`TcpTransport` / :class:`WorkerServer` -- an asyncio TCP
  client/server pair moving length-prefixed frames over real sockets.
* :class:`AsyncLoopbackTransport` / :class:`AsyncTcpTransport` -- the
  serving path's async-native twins: all of a session's connections
  multiplex on one shared :class:`EventLoopThread`, and
  :func:`scatter_requests` fans a wave out as a single ``asyncio.gather``
  instead of a thread-pool scatter.

The framing on the socket is an 8-byte big-endian length prefix followed by
one :mod:`repro.runtime.wire` frame.  The prefix is transport overhead (it
is never part of the word accounting, like TCP/IP headers themselves).

Concurrency model
-----------------
:meth:`Transport.request_many` pipelines several requests on **one**
connection: :class:`TcpTransport` stamps each outgoing frame with a
connection-unique request id (a fixed framing section, see
:func:`repro.runtime.wire.stamp_request_id`), writes the whole wave before
reading, and gathers the replies -- which may arrive out of order, matched
back by their echoed ids -- under a *per-request* timeout
(:class:`~repro.core.errors.WorkerTimeoutError`).  :func:`scatter_requests`
is the cross-worker half: one frame per transport, fanned out on a thread
pool so every worker computes while the others' round-trips are in flight.
:class:`WorkerServer` accepts any number of client connections and
interleaves requests arriving on one connection (each request runs on an
executor thread; replies are written as they complete, in completion
order -- the request ids keep the matching correct).

Failure semantics: a timed-out or failed request poisons its connection
(closes it) so a late reply can never be mis-delivered to the next request.
All protocol operations are idempotent, so :class:`TcpTransport` can
transparently reconnect-and-resend on *connection* errors (``retries``);
timeouts always surface as typed :class:`WorkerTimeoutError`.
"""

from __future__ import annotations

import abc
import asyncio
import concurrent.futures
import itertools
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core.errors import WireFormatError, WorkerProtocolError, WorkerTimeoutError
from repro.runtime import wire
from repro.utils.logging import get_logger

logger = get_logger("runtime.transport")

#: Upper bound on one frame; guards against garbage length prefixes.
MAX_FRAME_BYTES = 1 << 31

#: Bytes of the length prefix on the socket.
LENGTH_PREFIX_BYTES = 8

#: A worker-side frame handler: one encoded request in, one encoded reply out.
FrameHandler = Callable[[bytes], bytes]

#: Shared jitter source for retry backoff.  Jitter only de-synchronises
#: concurrent retriers; it never affects protocol results, so a module-level
#: unseeded generator is fine (tests inject their own for determinism).
_jitter_rng = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how long) to retry a failed request or recovery probe.

    One policy shared by :class:`TcpTransport`'s reconnect-and-resend loop
    and by :class:`repro.runtime.supervisor.WorkerSupervisor`'s recovery
    probes.  ``RetryPolicy()`` never retries; ``RetryPolicy(retries=N)``
    with the default ``backoff=0`` reproduces the historical immediate
    reconnect-and-resend behaviour exactly.  With a positive ``backoff`` the
    delay before retry *k* is ``backoff * multiplier**(k-1)``, capped at
    ``max_backoff``, multiplied by a uniform jitter in ``[1-jitter,
    1+jitter]``; ``max_elapsed`` bounds the total time budget -- a retry
    whose delay would exceed it is abandoned instead of slept through.
    """

    retries: int = 0
    backoff: float = 0.0
    multiplier: float = 2.0
    max_backoff: float = 5.0
    jitter: float = 0.0
    max_elapsed: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_backoff < 0:
            raise ValueError(f"max_backoff must be >= 0, got {self.max_backoff}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_elapsed is not None and self.max_elapsed < 0:
            raise ValueError(f"max_elapsed must be >= 0, got {self.max_elapsed}")

    def delay(self, attempt: int, *, rng=None) -> float:
        """Backoff (seconds, jittered) before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.backoff * self.multiplier ** (attempt - 1), self.max_backoff)
        if base > 0 and self.jitter > 0:
            rng = rng if rng is not None else _jitter_rng
            base *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, base)

    def pause(
        self,
        attempt: int,
        started: float,
        *,
        sleep=time.sleep,
        now=time.monotonic,
        rng=None,
    ) -> bool:
        """Sleep the backoff before retry ``attempt``; False means give up.

        ``started`` is the ``now()``-clock instant the first attempt began.
        Gives up when the retry budget is spent or when waiting would push
        the total elapsed time past ``max_elapsed``.
        """
        if attempt > self.retries:
            return False
        wait = self.delay(attempt, rng=rng)
        if self.max_elapsed is not None and (now() - started) + wait > self.max_elapsed:
            return False
        if wait > 0:
            sleep(wait)
        return True


class Transport(abc.ABC):
    """One coordinator-side channel to a single worker (request/reply)."""

    @abc.abstractmethod
    def request(self, frame: bytes) -> bytes:
        """Deliver ``frame`` to the worker and return its reply frame."""

    def request_many(self, frames: Sequence[bytes]) -> List[bytes]:
        """Deliver every frame and return the replies in request order.

        The base implementation executes serially (loopback semantics);
        pipelining transports override this to keep all requests in flight
        at once on the single connection.
        """
        return [self.request(frame) for frame in frames]

    def probe(self, frame: bytes) -> bool:
        """Health probe: True when the worker answers with a non-error frame.

        Never raises -- a dead connection, a timeout, garbage bytes or a
        typed ``error`` reply all report ``False``.  Used by the supervisor's
        heartbeat and recovery rounds.
        """
        try:
            return wire.decode_frame(self.request(frame)).op != "error"
        except Exception:  # noqa: BLE001 - any failure means "not healthy"
            return False

    def close(self) -> None:
        """Release transport resources (idempotent)."""


class LoopbackTransport(Transport):
    """In-memory transport: the worker's handler runs in the calling process.

    Frames are passed as immutable ``bytes`` exactly as a socket would
    deliver them, so encoding, decoding and byte accounting behave
    identically to the TCP transport.  ``request_many`` is the serial base
    implementation: there is no wire to pipeline.
    """

    def __init__(self, handler: FrameHandler) -> None:
        self._handler = handler
        self._closed = False

    def request(self, frame: bytes) -> bytes:
        if self._closed:
            raise RuntimeError("transport is closed")
        return bytes(self._handler(bytes(frame)))

    def close(self) -> None:
        self._closed = True


class LatencyTransport(Transport):
    """Adds a simulated one-way delay around an inner transport.

    Used by the latency benchmark and the concurrency tests to model a real
    network on top of in-process workers: a pipelined wave pays the
    round-trip once, the serial path pays it per request -- exactly the
    behaviour of a per-connection pipeline over a high-latency link.
    """

    def __init__(self, inner: Transport, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._inner = inner
        self._delay = float(delay)

    def request(self, frame: bytes) -> bytes:
        time.sleep(self._delay)
        reply = self._inner.request(frame)
        time.sleep(self._delay)
        return reply

    def request_many(self, frames: Sequence[bytes]) -> List[bytes]:
        time.sleep(self._delay)
        replies = self._inner.request_many(frames)
        time.sleep(self._delay)
        return replies

    def close(self) -> None:
        self._inner.close()


class EventLoopThread:
    """One background thread driving one shared asyncio event loop.

    The serving path's scatter fabric: every async-native transport of a
    session registers against one of these, so a *single* loop multiplexes
    all worker connections and a scatter wave is one ``asyncio.gather`` --
    no per-wave thread-pool fan-out, no per-transport private loop.  A
    process can then hold thousands of concurrent client sessions at the
    cost of sockets, not threads.
    """

    def __init__(self, name: str = "scatter-loop") -> None:
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._closed = False
        self._thread = threading.Thread(target=self._drive, name=name, daemon=True)
        self._thread.start()
        self._started.wait()

    def _drive(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            leftovers = asyncio.all_tasks(self._loop)
            for task in leftovers:
                task.cancel()
            if leftovers:
                self._loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True)
                )
            self._loop.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (submissions will fail)."""
        return self._closed

    def submit(self, coroutine) -> "concurrent.futures.Future":
        """Schedule a coroutine onto the loop from any thread."""
        if self._closed:
            raise RuntimeError("event-loop thread is closed")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop)

    def run(self, coroutine):
        """Block the calling (non-loop) thread on a coroutine's result."""
        return self.submit(coroutine).result()

    def close(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._loop.call_soon_threadsafe(self._loop.stop)
        except RuntimeError:  # pragma: no cover - loop died concurrently
            pass
        self._thread.join(timeout=10.0)


class AsyncLoopbackTransport(Transport):
    """Loopback twin of :class:`AsyncTcpTransport` for the serving path.

    The worker's handler runs inline in the request coroutine on the shared
    loop: the sketching work is CPU-bound and holds the GIL anyway, so on
    the single-core deployments this repo measures a thread hand-off would
    only add latency.  Frames still round-trip through immutable ``bytes``,
    so the codec and the byte ledger behave exactly like the socket path.
    """

    def __init__(self, handler: FrameHandler, loop_thread: EventLoopThread) -> None:
        self._handler = handler
        self._loop_thread = loop_thread
        self._closed = False

    @property
    def scatter_loop(self) -> EventLoopThread:
        """The shared loop this transport's coroutines run on."""
        return self._loop_thread

    async def request_async(self, frame: bytes) -> bytes:
        if self._closed:
            raise RuntimeError("transport is closed")
        return bytes(self._handler(bytes(frame)))

    def request(self, frame: bytes) -> bytes:
        return self._loop_thread.run(self.request_async(bytes(frame)))

    def close(self) -> None:
        self._closed = True


class AsyncTcpTransport(Transport):
    """TCP client whose requests are coroutines on a shared event loop.

    The serving-path sibling of :class:`TcpTransport`: same length-prefixed
    frames, same request-id stamping and per-step ``timeout``, but instead
    of a private per-transport loop driven by blocking calls, every
    connection of a session multiplexes on one :class:`EventLoopThread` --
    :func:`scatter_requests` then fans a wave out as a single gather with
    zero pool threads.  A failed or timed-out request poisons the
    connection (the next request reconnects); retry lives in the supervisor
    layer, not here.
    """

    def __init__(
        self,
        host: str,
        port: int,
        loop_thread: EventLoopThread,
        *,
        timeout: float = 30.0,
    ) -> None:
        self._host = host
        self._port = int(port)
        self._loop_thread = loop_thread
        self._timeout = float(timeout)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._request_ids = itertools.count(1)
        self._wave_lock: Optional[asyncio.Lock] = None
        self._closed = False
        # Eager connect, like TcpTransport: construction against a dead
        # worker must fail fast, not at the first wave.
        self._loop_thread.run(self._ensure_connected())

    @property
    def scatter_loop(self) -> EventLoopThread:
        """The shared loop this transport's coroutines run on."""
        return self._loop_thread

    async def _ensure_connected(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self._host, self._port), self._timeout
            )

    async def _read_frame(self) -> bytes:
        header = await self._reader.readexactly(LENGTH_PREFIX_BYTES)
        length = int.from_bytes(header, "big")
        if length > MAX_FRAME_BYTES:
            raise WireFormatError(f"peer announced an oversized {length}-byte frame")
        return await self._reader.readexactly(length)

    async def _poison(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def request_many_async(self, frames: Sequence[bytes]) -> List[bytes]:
        if self._closed:
            raise RuntimeError("transport is closed")
        if self._wave_lock is None:  # created lazily *on* the loop
            self._wave_lock = asyncio.Lock()
        frame_list = [bytes(frame) for frame in frames]
        if not frame_list:
            return []
        async with self._wave_lock:  # one wave at a time per connection
            try:
                await self._ensure_connected()
                ids = [next(self._request_ids) for _ in frame_list]
                stamped = [
                    wire.stamp_request_id(frame, rid)
                    for frame, rid in zip(frame_list, ids)
                ]
                for frame in stamped:
                    self._writer.write(_prefix(frame) + frame)
                await asyncio.wait_for(self._writer.drain(), self._timeout)
                replies_by_id = {}
                for _ in ids:
                    reply = await asyncio.wait_for(self._read_frame(), self._timeout)
                    replies_by_id[wire.frame_request_id(reply)] = reply
                try:
                    return [replies_by_id[rid] for rid in ids]
                except KeyError:
                    raise WorkerProtocolError(
                        f"worker {self._host}:{self._port} answered unknown "
                        "request ids"
                    ) from None
            except asyncio.TimeoutError:
                await self._poison()
                telemetry = obs.active()
                if telemetry is not None:
                    telemetry.metrics.counter("transport.timeouts").add(1)
                raise WorkerTimeoutError(
                    f"worker {self._host}:{self._port} did not answer within "
                    f"{self._timeout}s"
                ) from None
            except Exception:
                await self._poison()
                raise

    async def request_async(self, frame: bytes) -> bytes:
        return (await self.request_many_async([frame]))[0]

    def request(self, frame: bytes) -> bytes:
        return self._loop_thread.run(self.request_async(bytes(frame)))

    def request_many(self, frames: Sequence[bytes]) -> List[bytes]:
        return self._loop_thread.run(
            self.request_many_async([bytes(frame) for frame in frames])
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._loop_thread.run(self._poison())
        except RuntimeError:  # the shared loop is already gone
            self._reader = self._writer = None


def scatter_requests(
    transports: Sequence[Transport],
    frames: Union[bytes, Sequence[bytes]],
    *,
    pool: Optional[ThreadPoolExecutor] = None,
) -> List[bytes]:
    """Fan one request per transport out in a single wave.

    ``frames`` is either one broadcast frame shipped to every transport or a
    per-transport sequence.  When every transport is async-native (exposes
    ``scatter_loop``/``request_async``) and they share one
    :class:`EventLoopThread`, the wave runs as a single ``asyncio.gather``
    on that loop -- the serving path, zero pool threads in flight.
    Otherwise, with a ``pool`` the requests run concurrently (one pool task
    per worker -- each transport is used by at most one thread per wave,
    which is all the transports require); without one the wave degrades to
    the sequential worker-by-worker loop.  Replies are returned in
    transport order; the first failing worker's exception is raised after
    its predecessors' replies have been collected.
    """
    if isinstance(frames, (bytes, bytearray)):
        frame_list: List[bytes] = [bytes(frames)] * len(transports)
    else:
        frame_list = [bytes(frame) for frame in frames]
    if len(frame_list) != len(transports):
        raise ValueError(
            f"got {len(frame_list)} frames for {len(transports)} transports"
        )
    if len(transports) > 1:
        loop_thread = getattr(transports[0], "scatter_loop", None)
        if (
            loop_thread is not None
            and not loop_thread.closed
            and all(
                getattr(transport, "scatter_loop", None) is loop_thread
                for transport in transports
            )
        ):

            async def wave() -> List[bytes]:
                outcomes = await asyncio.gather(
                    *(
                        transport.request_async(frame)
                        for transport, frame in zip(transports, frame_list)
                    ),
                    return_exceptions=True,
                )
                for outcome in outcomes:
                    if isinstance(outcome, BaseException):
                        raise outcome
                return list(outcomes)

            return loop_thread.run(wave())
    if pool is None or len(transports) <= 1:
        return [
            transport.request(frame)
            for transport, frame in zip(transports, frame_list)
        ]
    telemetry = obs.active()
    fanout_start = time.monotonic_ns() if telemetry is not None else 0
    futures = [
        pool.submit(transport.request, frame)
        for transport, frame in zip(transports, frame_list)
    ]
    if telemetry is not None:
        # Queue/fan-out time: how long it took to get every worker's
        # round-trip submitted to the pool (the wave's serial prefix).
        telemetry.metrics.histogram("scatter.fanout_seconds").observe(
            (time.monotonic_ns() - fanout_start) / 1e9
        )
    try:
        return [future.result() for future in futures]
    finally:
        # On an early failure: cancel what has not started, then WAIT for
        # the in-flight requests to finish.  A pool thread still inside
        # transport.request() owns that transport's private event loop, and
        # callers typically close every transport right after an error --
        # returning while a thread is mid-request would make close() re-enter
        # a running loop (and mask the real failure with a RuntimeError).
        for future in futures:
            future.cancel()
        concurrent.futures.wait(futures)


def _prefix(frame: bytes) -> bytes:
    if len(frame) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame of {len(frame)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return len(frame).to_bytes(LENGTH_PREFIX_BYTES, "big")


class TcpTransport(Transport):
    """Asyncio TCP client speaking length-prefixed wire frames.

    The transport owns a private event loop so the (synchronous) protocol
    code can issue blocking requests; one connection is opened eagerly at
    construction and reused for every request.  ``request_many`` pipelines a
    whole wave of frames on that connection: every frame is stamped with a
    fresh request id, all are written before any reply is awaited, and the
    replies -- possibly out of order -- are matched back by id under a
    per-request ``timeout``.

    ``retry_policy`` (or the ``retries`` shorthand, equivalent to
    ``RetryPolicy(retries=N)``) reconnects and resends the wave after a
    *connection* failure (reset, mid-reply close), sleeping the policy's
    exponential backoff between attempts; the protocol's operations are
    idempotent, so a resend is safe.  Timeouts are never retried implicitly
    -- they surface
    as :class:`~repro.core.errors.WorkerTimeoutError` with the connection
    poisoned, and the caller decides.  A poisoned transport is not dead: the
    next request opens a *fresh* connection (the old socket is closed, so a
    late reply to the timed-out request can never be mis-delivered), while
    :meth:`close` shuts the transport down for good.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(retries=max(0, int(retries)))
        )
        self._loop = asyncio.new_event_loop()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._request_ids = itertools.count(1)
        self._connect()

    def _connect(self) -> None:
        self._reader, self._writer = self._run(
            asyncio.wait_for(
                asyncio.open_connection(self._host, self._port), self._timeout
            )
        )

    def _run(self, coroutine):
        return self._loop.run_until_complete(coroutine)

    async def _read_frame(self) -> bytes:
        header = await self._reader.readexactly(LENGTH_PREFIX_BYTES)
        length = int.from_bytes(header, "big")
        if length > MAX_FRAME_BYTES:
            raise WireFormatError(f"peer announced an oversized {length}-byte frame")
        return await self._reader.readexactly(length)

    async def _pipeline(self, stamped: List[bytes], ids: List[int]) -> List[bytes]:
        """Write the whole wave, then gather replies by id (any order)."""
        futures = {rid: self._loop.create_future() for rid in ids}

        async def read_replies() -> None:
            try:
                for _ in range(len(ids)):
                    frame = await self._read_frame()
                    rid = wire.frame_request_id(frame)
                    future = futures.get(rid)
                    if future is None or future.done():
                        raise WorkerProtocolError(
                            f"worker answered unknown or duplicate request id {rid}"
                        )
                    future.set_result(frame)
            except Exception as exc:
                for future in futures.values():
                    if not future.done():
                        future.set_exception(exc)

        reader_task = self._loop.create_task(read_replies())
        try:
            for frame in stamped:
                self._writer.write(_prefix(frame) + frame)
            try:
                # The write path is bounded too: a wedged peer that stops
                # reading (full socket buffers, frozen process) must surface
                # a typed timeout, not hang the coordinator in drain().
                await asyncio.wait_for(self._writer.drain(), self._timeout)
            except asyncio.TimeoutError:
                raise WorkerTimeoutError(
                    f"worker {self._host}:{self._port} did not accept the "
                    f"request wave within {self._timeout}s"
                ) from None

            async def one_reply(rid: int) -> bytes:
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(futures[rid]), self._timeout
                    )
                except asyncio.TimeoutError:
                    raise WorkerTimeoutError(
                        f"worker {self._host}:{self._port} did not answer "
                        f"request {rid} within {self._timeout}s"
                    ) from None

            outcomes = await asyncio.gather(
                *(one_reply(rid) for rid in ids), return_exceptions=True
            )
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome
            return list(outcomes)
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except asyncio.CancelledError:
                pass  # normal teardown: the reader was cancelled mid-await
            except Exception as exc:  # noqa: BLE001 - cleanup must not mask
                # The reader's failure already reached every pending future;
                # this is only its re-raise during cancellation.
                logger.debug(
                    "reader task cleanup on %s:%s raised %s: %s",
                    self._host, self._port, type(exc).__name__, exc,
                )
            for future in futures.values():
                if future.done() and not future.cancelled():
                    future.exception()  # mark retrieved
                else:
                    future.cancel()

    @property
    def retry_policy(self) -> RetryPolicy:
        """The reconnect-and-resend policy of this transport."""
        return self._policy

    def request_many(self, frames: Sequence[bytes]) -> List[bytes]:
        if self._loop.is_closed():
            raise RuntimeError("transport is closed")
        frame_list = [bytes(frame) for frame in frames]
        if not frame_list:
            return []
        last_error: Optional[BaseException] = None
        started = time.monotonic()
        attempt = 0
        while True:
            if attempt and not self._policy.pause(attempt, started):
                break
            attempt += 1
            if self._writer is None:
                try:
                    self._connect()
                except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                    last_error = exc
                    continue
            ids = [next(self._request_ids) for _ in frame_list]
            stamped = [
                wire.stamp_request_id(frame, rid)
                for frame, rid in zip(frame_list, ids)
            ]
            try:
                return self._run(self._pipeline(stamped, ids))
            except WorkerTimeoutError:
                # Typed timeout: poison the connection and surface
                # immediately -- never retried implicitly.  (Must precede
                # the OSError branch: TimeoutError subclasses OSError.)
                self._close_connection()
                telemetry = obs.active()
                if telemetry is not None:
                    telemetry.metrics.counter("transport.timeouts").add(1)
                raise
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
            ) as exc:
                # A reset or mid-reply close: poison the connection, then
                # reconnect-and-resend if attempts remain (idempotent ops).
                self._close_connection()
                last_error = exc
                telemetry = obs.active()
                if telemetry is not None:
                    telemetry.metrics.counter("transport.reconnects").add(1)
            except Exception:
                # Typed failures (protocol, wire format) poison the
                # connection and surface immediately -- no implicit retry.
                self._close_connection()
                raise
        raise WorkerProtocolError(
            f"worker {self._host}:{self._port} connection failed after "
            f"{attempt} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        ) from last_error

    def request(self, frame: bytes) -> bytes:
        return self.request_many([frame])[0]

    def _close_connection(self) -> None:
        if self._writer is not None:
            writer, self._writer, self._reader = self._writer, None, None
            try:
                writer.close()
                # Defensive: never re-enter the loop if another thread is
                # (erroneously) still driving it -- close() must not mask
                # that thread's real failure with a RuntimeError.
                if not self._loop.is_running():
                    self._run(writer.wait_closed())
            except (ConnectionError, OSError):
                pass

    def close(self) -> None:
        self._close_connection()
        if not self._loop.is_closed() and not self._loop.is_running():
            self._loop.close()


class WorkerServer:
    """Asyncio TCP server exposing one frame handler to remote coordinators.

    ``start()`` binds the socket on a background thread and returns the
    bound ``(host, port)`` (``port=0`` picks a free port); ``wait()`` blocks
    until the server stops -- either via :meth:`stop` or, when
    ``stop_check`` returns True after a request (e.g. the worker saw a
    ``shutdown`` op), on its own.

    The server accepts any number of client connections, and requests
    arriving on one connection are served concurrently: each frame is handed
    to a ``concurrency``-wide thread pool and its reply is written back --
    stamped with the request's id -- as soon as it is ready, so a slow
    request never blocks the fast ones behind it.  A handler that raises
    kills only its own connection (well-behaved handlers answer faults with
    typed ``error`` frames instead).
    """

    def __init__(
        self,
        handler: FrameHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        stop_check: Optional[Callable[[], bool]] = None,
        concurrency: int = 8,
    ) -> None:
        self._handler = handler
        self._host = host
        self._port = int(port)
        self._stop_check = stop_check
        self._concurrency = max(1, int(concurrency))
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    async def _answer(
        self,
        frame: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            reply = await self._loop.run_in_executor(
                self._executor, self._handler, bytes(frame)
            )
            try:
                reply = wire.stamp_request_id(reply, wire.frame_request_id(frame))
            except WireFormatError:
                pass  # non-frame traffic (tests, garbage): echo the reply as-is
            prefixed = _prefix(reply) + reply
        except Exception as exc:  # noqa: BLE001 - must not kill the server
            # A handler that raises (instead of answering with a typed error
            # frame) kills only its own connection; the client surfaces a
            # typed connection error instead of waiting out its timeout.
            logger.warning(
                "worker handler failed for peer %s, dropping its connection: %s: %s",
                writer.get_extra_info("peername"), type(exc).__name__, exc,
            )
            writer.close()
            return
        async with write_lock:
            if writer.is_closing():
                return
            try:
                writer.write(prefixed)
                await writer.drain()
            except (ConnectionError, OSError):
                return
        if self._stop_check is not None and self._stop_check():
            self._loop.call_soon(self._loop.stop)

    async def _serve_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        pending: set = set()
        try:
            while True:
                header = await reader.readexactly(LENGTH_PREFIX_BYTES)
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    raise WireFormatError(
                        f"peer announced an oversized {length}-byte frame"
                    )
                frame = await reader.readexactly(length)
                task = self._loop.create_task(
                    self._answer(frame, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (asyncio.IncompleteReadError, ConnectionResetError, WireFormatError) as exc:
            # Peer went away or spoke garbage; drop the connection.  An
            # IncompleteReadError with no partial bytes is a clean client
            # disconnect -- routine, not worth a log line.
            clean_eof = (
                isinstance(exc, asyncio.IncompleteReadError) and not exc.partial
            )
            if not clean_eof:
                logger.debug(
                    "connection from peer %s dropped: %s: %s",
                    writer.get_extra_info("peername"), type(exc).__name__, exc,
                )
        except asyncio.CancelledError:
            pass  # server teardown while this connection was mid-read
        finally:
            if pending:
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._serve_client, self._host, self._port)
            )
        except BaseException as exc:  # bind failures surface in start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        # The executor exists only once the socket is bound: on a bind
        # failure start() re-raises and the caller holds no handle to shut
        # anything down, so nothing request-serving may outlive that path.
        self._executor = ThreadPoolExecutor(
            max_workers=self._concurrency, thread_name_prefix="worker-server"
        )
        self._port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            leftovers = asyncio.all_tasks(loop)
            for task in leftovers:
                task.cancel()
            if leftovers:
                loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True)
                )
            self._executor.shutdown(wait=False)
            loop.close()

    def start(self) -> Tuple[str, int]:
        """Bind and serve on a background thread; return ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self._host, self._port

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        return self._port

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until the server thread exits."""
        if self._thread is not None:
            self._thread.join(timeout)

    def stop(self) -> None:
        """Stop the event loop and join the server thread (idempotent)."""
        if self._loop is not None and not self._loop.is_closed():
            try:
                # Also valid before run_forever() starts: the callback is
                # queued and executed as soon as the loop runs, closing the
                # start()/stop() race window.
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:  # pragma: no cover - loop closed concurrently
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
