"""Wire-format and runtime subsystem: serializable, mergeable, servable sketches.

Three layers (see the README's *Runtime* section):

* :mod:`repro.runtime.wire` -- versioned binary codec whose data section is
  exactly ``BYTES_PER_WORD`` bytes per accounted word;
* :mod:`repro.runtime.state` -- serializable sketch state with associative,
  coefficient-checked ``merge``;
* :mod:`repro.runtime.transport` / :mod:`repro.runtime.service` -- pluggable
  transports (in-memory loopback, asyncio TCP) and the coordinator/worker
  pair running the Z-sampling pipeline over them, byte-audited against the
  simulated word accounting;
* :mod:`repro.runtime.supervisor` -- heartbeats, checkpointed worker state
  and live failover for supervised coordinator sessions (recovery is
  bit-identity- and accounting-preserving).
"""

from repro.runtime.service import CoordinatorService, RemoteVector, WorkerService
from repro.runtime.state import (
    BatchedSketchState,
    CountSketchState,
    HeavyHitterSummary,
    WorkerCheckpoint,
    ZEstimateState,
)
from repro.runtime.supervisor import (
    DegradedEstimate,
    WorkerHealth,
    WorkerSupervisor,
    classify_failure,
)
from repro.runtime.transport import (
    LatencyTransport,
    LoopbackTransport,
    RetryPolicy,
    TcpTransport,
    Transport,
    WorkerServer,
    scatter_requests,
)
from repro.runtime.wire import (
    WIRE_VERSION,
    decode_frame,
    encode_frame,
    frame_request_id,
    from_bytes,
    stamp_request_id,
    to_bytes,
    wire_word_count,
)

__all__ = [
    "WIRE_VERSION",
    "to_bytes",
    "from_bytes",
    "wire_word_count",
    "encode_frame",
    "decode_frame",
    "frame_request_id",
    "stamp_request_id",
    "CountSketchState",
    "BatchedSketchState",
    "HeavyHitterSummary",
    "ZEstimateState",
    "WorkerCheckpoint",
    "Transport",
    "LoopbackTransport",
    "LatencyTransport",
    "TcpTransport",
    "RetryPolicy",
    "WorkerServer",
    "WorkerService",
    "CoordinatorService",
    "RemoteVector",
    "scatter_requests",
    "WorkerSupervisor",
    "WorkerHealth",
    "DegradedEstimate",
    "classify_failure",
]
