"""Coordinator/worker services running the Z-pipeline over a real transport.

The simulated protocols (``z_heavy_hitters``, ``ZEstimator``, ``ZSampler``)
execute every server's local work in one process and only *account* the
traffic.  The services here run the **same protocol code** with the
per-server work behind a transport:

* a :class:`WorkerService` owns one server's sparse component and answers
  the coordinator's wire frames -- caching the subsample hash ``g``,
  sketching its (possibly level-restricted) component into the broadcast
  per-bucket CountSketch family, and looking up exact values;
* a :class:`RemoteVector` is a :class:`~repro.distributed.vector.DistributedVector`
  whose per-server seams (:meth:`batched_sketch_tables`,
  :meth:`subsample_restrictor`, :meth:`collect`) talk to the workers over a
  pluggable :class:`~repro.runtime.transport.Transport` instead of touching
  local components;
* a :class:`CoordinatorService` holds server 0's own component (the
  Central Processor stores data too; its traffic is free, exactly as in the
  simulation) and runs Algorithm 2 / 3 / 4 end-to-end.

Because the coordinator draws every hash seed and RNG stream exactly as the
in-process run does, a same-seed :class:`~repro.distributed.cluster.LocalCluster`
simulation produces **bit-identical** candidates, estimates, draws and
per-tag word counts -- and the transport's data plane carries exactly
``BYTES_PER_WORD`` bytes per accounted word (checked by
:meth:`~repro.distributed.network.TransportNetwork.verify_wire_accounting`).
"""

from __future__ import annotations

import itertools
import threading
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.backend.base import ExecutionSession
from repro.backend.streaming import StreamingSketchState
from repro.core.errors import (
    AdmissionError,
    DimensionMismatchError,
    WorkerProtocolError,
)
from repro.distributed.network import TransportNetwork
from repro.distributed.vector import (
    DistributedVector,
    check_delta_components,
    lookup_sorted,
)
from repro.runtime import wire
from repro.runtime.state import WorkerCheckpoint
from repro.runtime.transport import Transport, scatter_requests
from repro.sketch import engine
from repro.sketch.countsketch import CountSketch, batched_sketch_uncached
from repro.sketch.hashing import KWiseHash, SubsampleHash


def _check_reply(reply: wire.DecodedFrame, op: str, worker: int):
    if reply.op == "error":
        error_type = reply.meta.get("type", "Error")
        message = (
            f"worker {worker + 1} failed op {op!r}: "
            f"{error_type}: {reply.meta.get('message', '')}"
        )
        if error_type == "AdmissionError":
            # Quota rejections travel back typed: the caller (and the CLI's
            # exit-code table) must distinguish "over quota, retry later /
            # elsewhere" from a genuine protocol fault.
            raise AdmissionError(message)
        raise WorkerProtocolError(message)
    return reply


def _rpc_encoded(
    network: TransportNetwork,
    transport: Transport,
    op: str,
    frame: bytes,
    sections,
    overhead: int,
    worker: int = 0,
):
    """Ship one pre-encoded frame and account both directions."""
    network.record_frame(sections, overhead)
    reply = wire.decode_frame(transport.request(frame))
    network.record_frame(reply.data_sections, reply.overhead_bytes)
    return _check_reply(reply, op, worker)


def _rpc(
    network: TransportNetwork,
    transport: Transport,
    op: str,
    meta=None,
    entries=(),
    worker: int = 0,
):
    """One accounted request/reply round-trip with a worker."""
    frame, sections, overhead = wire.encode_frame_with_stats(op, meta, entries)
    return _rpc_encoded(network, transport, op, frame, sections, overhead, worker)


class _TracedWorkerRequest(Transport):
    """Spans one worker's round-trip inside a traced scatter wave.

    Wrapping happens per wave attempt (never stored), so recovery's
    in-place transport swaps are always picked up by the next attempt.
    The explicit ``parent_id`` carries the wave span across the scatter
    pool's threads, where thread-local nesting cannot.
    """

    __slots__ = ("_inner", "_telemetry", "_worker", "_op", "_parent_id")

    def __init__(self, inner, telemetry, worker, op, parent_id):
        self._inner = inner
        self._telemetry = telemetry
        self._worker = worker
        self._op = op
        self._parent_id = parent_id

    def request(self, frame: bytes) -> bytes:
        self._telemetry.metrics.counter(f"worker.frames.{self._worker}").add(1)
        with self._telemetry.tracer.span(
            "worker:request",
            parent_id=self._parent_id,
            worker=self._worker,
            op=self._op,
        ):
            return self._inner.request(frame)

    @property
    def scatter_loop(self):
        """Forward the inner transport's shared event loop (None if sync)."""
        return getattr(self._inner, "scatter_loop", None)

    async def request_async(self, frame: bytes) -> bytes:
        # Interleaved coroutines share one loop thread; the explicit
        # parent_id (not the thread-local stack) carries the nesting, and
        # the tracer tolerates out-of-order exits.
        self._telemetry.metrics.counter(f"worker.frames.{self._worker}").add(1)
        with self._telemetry.tracer.span(
            "worker:request",
            parent_id=self._parent_id,
            worker=self._worker,
            op=self._op,
        ):
            return await self._inner.request_async(frame)


def _scatter_wave(
    transports: Sequence[Transport],
    op: str,
    frames: Sequence[bytes],
    pool: Optional[ThreadPoolExecutor],
    attempt: int,
) -> List[bytes]:
    """One (possibly traced) scatter wave over every worker transport."""
    telemetry = obs.active()
    if telemetry is None:
        return scatter_requests(transports, frames, pool=pool)
    with telemetry.tracer.span(
        f"wave:{op}", op=op, workers=len(transports), attempt=attempt
    ) as wave:
        traced = [
            _TracedWorkerRequest(transport, telemetry, worker, op, wave.span_id)
            for worker, transport in enumerate(transports)
        ]
        replies = scatter_requests(traced, frames, pool=pool)
    telemetry.metrics.histogram(f"wave.seconds.{op}").observe(wave.duration_seconds)
    return replies


def _rpc_scatter(
    network: TransportNetwork,
    transports: Sequence[Transport],
    op: str,
    frame: bytes,
    sections,
    overhead: int,
    pool: Optional[ThreadPoolExecutor] = None,
    supervisor=None,
    recover=None,
) -> List[wire.DecodedFrame]:
    """Ship one broadcast frame to every worker in a single wave.

    With a ``pool`` all round-trips are in flight at once; without one this
    degrades to the sequential worker-by-worker loop.  Request accounting is
    recorded up front (the frame is on the wire for every worker before any
    reply lands) and reply accounting strictly in worker order, so the byte
    ledger is identical under either schedule -- sums over the same per-frame
    sections.  Replies are returned in worker order regardless of the order
    they arrived in.
    """
    return _rpc_scatter_each(
        network, transports, op, [(frame, sections, overhead)] * len(transports),
        pool=pool, supervisor=supervisor, recover=recover,
    )


def _rpc_scatter_each(
    network: TransportNetwork,
    transports: Sequence[Transport],
    op: str,
    encoded: Sequence[Tuple[bytes, object, int]],
    pool: Optional[ThreadPoolExecutor] = None,
    supervisor=None,
    recover=None,
) -> List[wire.DecodedFrame]:
    """Ship one (possibly distinct) pre-encoded frame per worker in one wave.

    The per-worker generalisation of :func:`_rpc_scatter`, used when the
    payload differs by worker (e.g. each worker's own delta shard of a
    stream).  Accounting follows the same schedule-independent rule:
    requests up front, replies strictly in worker order.

    This is the recovery seam.  With a ``supervisor``, a wave that fails is
    classified: transient failures let the supervisor probe every worker,
    recover the dead ones (respawn + checkpoint restore + journal replay),
    and the **whole wave is re-issued** -- safe because every protocol op is
    idempotent and updates dedupe by seq.  Request bytes were recorded once,
    before the first attempt; replays are never re-recorded, so the ledger
    matches an uninterrupted run.  ``transports`` must be the coordinator's
    *live, shared* transport list -- recovery swaps fresh transports into it
    in place, and the retry must pick them up.

    ``recover(worker, frame, reply)`` is the *application-level* half of
    that seam: called for each worker whose reply is a typed ``error``
    frame, before the reply is recorded or raised.  Returning a replacement
    :class:`~repro.runtime.wire.DecodedFrame` adopts it (the error frame and
    any recovery traffic stay off the ledger, so the run books exactly what
    an unfailed run would); returning ``None`` falls through to the normal
    typed raise.
    """
    for _, sections, overhead in encoded:
        network.record_frame(sections, overhead)
    frames = [frame for frame, _, _ in encoded]
    if supervisor is not None:
        supervisor.observe_wave(op, frames)
    attempts = 0
    while True:
        try:
            raw_replies = _scatter_wave(transports, op, frames, pool, attempts)
            break
        except Exception as exc:  # noqa: BLE001 - classified by the supervisor
            attempts += 1
            if supervisor is None or not supervisor.recover_for_retry(
                exc, op=op, attempt=attempts
            ):
                raise
            telemetry = obs.active()
            if telemetry is not None:
                telemetry.metrics.counter("wave.retries").add(1)
    replies: List[wire.DecodedFrame] = []
    for worker, raw in enumerate(raw_replies):
        reply = wire.decode_frame(raw)
        if reply.op == "error" and recover is not None:
            replacement = recover(worker, frames[worker], reply)
            if replacement is not None:
                reply = replacement
        network.record_frame(reply.data_sections, reply.overhead_bytes)
        replies.append(_check_reply(reply, op, worker))
    return replies


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
class WorkerService:
    """One server's component plus the frame handlers that serve it.

    The service is transport-agnostic: :meth:`handle_frame` maps one encoded
    request frame to one encoded reply frame, and both the in-memory
    loopback and the TCP server deliver frames to it unchanged.

    :meth:`handle_frame` is **thread-safe**: the component arrays are
    immutable after construction and the subsample-hash cache is guarded by
    a lock, so one service instance can serve interleaved requests from many
    concurrent connections (the TCP server's executor threads) or many
    loopback coordinators at once.  Cache entries are namespaced by the
    coordinator's *session* id so concurrent clients with colliding token
    counters never read each other's cached ``g`` values.
    """

    #: Maximum number of cached subsample-hash value arrays per session
    #: (constructor knob ``max_subsample_caches`` overrides; also a CLI
    #: knob, ``serve --subsample-cache-size``).
    MAX_SUBSAMPLE_CACHES = 4
    #: Maximum number of concurrently cached sessions (LRU-evicted).
    MAX_SESSIONS = 64
    #: Maximum cached stream-sketch states (matches the session-side cap so
    #: cache behaviour cannot diverge between backends; constructor knob
    #: ``max_stream_states`` overrides; also a CLI knob,
    #: ``serve --stream-cache-size``).
    MAX_STREAM_STATES = ExecutionSession.MAX_STREAM_STATES

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        dimension: int,
        *,
        name: str = "",
        max_subsample_caches: Optional[int] = None,
        max_sessions: Optional[int] = None,
        max_stream_states: Optional[int] = None,
        max_tenants: Optional[int] = None,
        max_sessions_per_tenant: Optional[int] = None,
    ) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        val = np.asarray(values, dtype=float)
        if idx.shape != val.shape or idx.ndim != 1:
            raise DimensionMismatchError(
                "worker component indices and values must be matching 1-D arrays"
            )
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if idx.size and (idx.min() < 0 or idx.max() >= dimension):
            raise DimensionMismatchError(
                f"worker holds coordinates outside [0, {dimension - 1}]"
            )
        self._dimension = int(dimension)
        self._name = name
        # The component plus its sorted-coalesced lookup view travel as ONE
        # tuple so a streaming `update` replaces them atomically: concurrent
        # readers unpack the attribute once and never see a torn pair.
        self._component: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] = (
            idx, val, *DistributedVector._sorted_coalesced(idx, val)
        )
        self._max_subsample_caches = int(
            max_subsample_caches
            if max_subsample_caches is not None
            else self.MAX_SUBSAMPLE_CACHES
        )
        if self._max_subsample_caches < 1:
            raise ValueError("max_subsample_caches must be >= 1")
        self._max_sessions = int(
            max_sessions if max_sessions is not None else self.MAX_SESSIONS
        )
        if self._max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self._max_stream_states = int(
            max_stream_states if max_stream_states is not None else self.MAX_STREAM_STATES
        )
        if self._max_stream_states < 1:
            raise ValueError("max_stream_states must be >= 1")
        #: Admission quotas: hard per-tenant caps layered *on top of* the
        #: LRU knobs above.  The LRU caps bound total memory by evicting the
        #: least recently used session; the quotas refuse a new session
        #: outright (typed :class:`~repro.core.errors.AdmissionError`) so one
        #: tenant can never thrash every neighbour out of the caches.
        #: ``None`` disables the respective check.
        self._max_tenants = None if max_tenants is None else int(max_tenants)
        if self._max_tenants is not None and self._max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        self._max_sessions_per_tenant = (
            None if max_sessions_per_tenant is None else int(max_sessions_per_tenant)
        )
        if self._max_sessions_per_tenant is not None and self._max_sessions_per_tenant < 1:
            raise ValueError("max_sessions_per_tenant must be >= 1")
        #: session id -> tenant id of every session holding cache entries;
        #: maintained under the subsample lock alongside ``_subsample_g``.
        self._session_tenants: Dict[str, str] = {}
        #: session id -> (token -> (g values, hash coefficients, scale));
        #: the coefficients ride along so a streaming update can refresh the
        #: cached values *incrementally* instead of wiping every session.
        self._subsample_g: "OrderedDict[str, Dict[int, tuple]]" = OrderedDict()
        self._subsample_lock = threading.Lock()
        #: (session, stream) -> StreamingSketchState; guarded by its own
        #: lock, namespaced per coordinator session (like the subsample
        #: caches) so concurrent clients never thrash each other's states,
        #: and incrementally refreshed by the `update` op.
        self._stream_states: "OrderedDict[Tuple[str, str], StreamingSketchState]" = (
            OrderedDict()
        )
        #: session -> (seq, count, index_sum, value_sum) of the last applied
        #: delta batch: the idempotency ledger that makes `update` retries
        #: exactly-once (duplicate seq -> acked without re-applying; same
        #: seq with different contents -> typed error).
        self._applied_updates: "OrderedDict[str, tuple]" = OrderedDict()
        self._stream_lock = threading.Lock()
        self.shutdown_requested = False

    @property
    def _idx(self) -> np.ndarray:
        return self._component[0]

    @property
    def _val(self) -> np.ndarray:
        return self._component[1]

    # ------------------------------------------------------------------ #
    # frame dispatch
    # ------------------------------------------------------------------ #
    def handle_frame(self, frame_bytes: bytes) -> bytes:
        """Answer one request frame (errors travel back as ``error`` frames)."""
        try:
            frame = wire.decode_frame(frame_bytes)
            handler = getattr(self, f"_op_{frame.op}", None)
            if handler is None:
                raise WorkerProtocolError(f"unknown op {frame.op!r}")
            return handler(frame)
        except Exception as exc:  # noqa: BLE001 - faults must reach the coordinator
            return wire.encode_frame(
                "error", {"type": type(exc).__name__, "message": str(exc)}
            )

    def _restricted_component(self, meta: dict) -> Tuple[np.ndarray, np.ndarray]:
        idx, val = self._component[:2]
        threshold = meta.get("threshold")
        if threshold is None:
            return idx, val
        token = meta.get("token")
        session = str(meta.get("session", ""))
        with self._subsample_lock:
            cache = self._subsample_g.get(session)
            g = None
            if cache is not None:
                # Reads refresh LRU recency too: a session actively issuing
                # restricted sketches must not be evicted as "least recently
                # used" just because it stopped *writing* new tokens.
                self._subsample_g.move_to_end(session)
                entry = cache.get(token)
                if entry is not None:
                    g = entry[0]
        telemetry = obs.active()
        if telemetry is not None:
            hit = g is not None and g.shape == idx.shape
            telemetry.metrics.counter(
                "worker.subsample.hits" if hit else "worker.subsample.misses"
            ).add(1)
        if g is None or g.shape != idx.shape:
            # A missing token: evicted (LRU), restored over (checkpoint), or
            # never sent.  The coordinator treats this error as *retryable*
            # -- it re-sends the session's subsample frame and re-issues the
            # sketch, so a victim of a neighbour's eviction recovers instead
            # of hard-failing mid-protocol.
            raise WorkerProtocolError(
                f"no cached subsample values for token {token!r} in session "
                f"{session!r}; send a 'subsample' frame first"
            )
        mask = g < int(threshold)
        return idx[mask], val[mask]

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    def _op_hello(self, frame) -> bytes:
        return wire.encode_frame(
            "hello",
            {
                "dimension": self._dimension,
                "support": int(self._idx.size),
                "name": self._name,
            },
        )

    def _admit_session(self, session: str, tenant: str, telemetry) -> None:
        """Quota-check a *new* session (subsample lock held by the caller).

        Counts the live cached sessions per tenant and refuses -- typed
        :class:`~repro.core.errors.AdmissionError`, travelling back as an
        error frame the coordinator re-raises typed -- when admitting
        ``session`` would push its tenant past ``max_sessions_per_tenant``
        or open a seat for a brand-new tenant past ``max_tenants``.  A
        refusal mutates nothing: the neighbour sessions (and the ledger)
        are exactly as they were.
        """
        if self._max_tenants is None and self._max_sessions_per_tenant is None:
            return
        live: Dict[str, int] = {}
        for live_session in self._subsample_g:
            owner = self._session_tenants.get(live_session, "")
            live[owner] = live.get(owner, 0) + 1
        rejection = None
        if (
            self._max_tenants is not None
            and tenant not in live
            and len(live) >= self._max_tenants
        ):
            rejection = (
                f"tenant {tenant!r} refused: worker already serves "
                f"{len(live)} tenant(s) (max_tenants={self._max_tenants})"
            )
        elif (
            self._max_sessions_per_tenant is not None
            and live.get(tenant, 0) >= self._max_sessions_per_tenant
        ):
            rejection = (
                f"session {session!r} of tenant {tenant!r} refused: the "
                f"tenant already holds {live[tenant]} session(s) "
                f"(max_sessions_per_tenant={self._max_sessions_per_tenant})"
            )
        if rejection is not None:
            if telemetry is not None:
                telemetry.metrics.counter("worker.admission.rejected").add(1)
            raise AdmissionError(rejection)

    def _op_subsample(self, frame) -> bytes:
        """Cache the subsample hash ``g`` over the local component."""
        meta = frame.meta
        coefficients = np.asarray(frame.entry(0), dtype=np.int64)
        domain_scale = int(meta["domain_scale"])
        subsample = SubsampleHash.from_coefficients(domain_scale, coefficients)
        token = int(meta["token"])
        session = str(meta.get("session", ""))
        tenant = str(meta.get("tenant", ""))
        idx = self._component[0]
        values = subsample(idx) if idx.size else np.zeros(0, dtype=np.int64)
        telemetry = obs.active()
        with self._subsample_lock:
            cache = self._subsample_g.get(session)
            if cache is None:
                self._admit_session(session, tenant, telemetry)
                while len(self._subsample_g) >= self._max_sessions:
                    victim, _ = self._subsample_g.popitem(last=False)
                    self._session_tenants.pop(victim, None)
                    if telemetry is not None:
                        telemetry.metrics.counter("worker.sessions.evictions").add(1)
                cache = self._subsample_g.setdefault(session, {})
                self._session_tenants[session] = tenant
            else:
                self._subsample_g.move_to_end(session)
            if len(cache) >= self._max_subsample_caches:
                cache.pop(next(iter(cache)))
                if telemetry is not None:
                    telemetry.metrics.counter("worker.subsample.evictions").add(1)
            cache[token] = (values, coefficients, domain_scale)
        return wire.encode_frame("ack", {"cached": int(idx.size)})

    def _op_sketch(self, frame) -> bytes:
        """Sketch the (restricted) component into the broadcast bucket family.

        The reply's table stack covers only the occupied buckets the
        coordinator named (the simulation neither ships nor charges tables
        for buckets no domain coordinate hashes into), bit-for-bit equal to
        the corresponding slices of a full
        :meth:`~repro.sketch.countsketch.BatchedCountSketch.sketch_assigned`
        stack.
        """
        meta = frame.meta
        num_buckets = int(meta["num_buckets"])
        depth, width = int(meta["depth"]), int(meta["width"])
        nonempty = np.asarray(meta["nonempty"], dtype=np.int64)
        bucket_hash = KWiseHash.from_coefficients(
            np.asarray(frame.entry(0), dtype=np.int64), num_buckets
        )
        member_bucket, member_sign = frame.entry(1)
        idx, val = self._restricted_component(meta)
        if idx.size == 0:
            stack = np.zeros((nonempty.size, depth, width), dtype=float)
        else:
            assignment = bucket_hash(idx)
            compact = np.searchsorted(nonempty, assignment)
            if np.any(nonempty[np.minimum(compact, nonempty.size - 1)] != assignment):
                raise WorkerProtocolError(
                    "local coordinates hash into a bucket the coordinator "
                    "declared empty -- bucket hash coefficients disagree"
                )
            stack = batched_sketch_uncached(
                idx,
                val,
                compact,
                np.asarray(member_bucket, dtype=np.uint64),
                np.asarray(member_sign, dtype=np.uint64),
                nonempty.size,
                depth,
                width,
            )
        return wire.encode_frame("tables", {}, [(meta["tables_tag"], stack)])

    def _op_collect(self, frame) -> bytes:
        """Exact local values at the queried coordinates (always unrestricted)."""
        _, _, sorted_idx, sorted_val = self._component
        query = np.asarray(frame.entry(0), dtype=np.int64)
        values = lookup_sorted(sorted_idx, sorted_val, query)
        return wire.encode_frame("values", {}, [(frame.meta["tag"], values)])

    def _op_update(self, frame) -> bytes:
        """Apply this worker's shard of a streaming delta batch (exactly once).

        The delta arrays travel as an *untagged* control entry: like the
        initial data placement, stream ingestion at the servers is never
        charged to the word model, on any backend.  The component (plus its
        sorted lookup view) is replaced atomically, every session's cached
        subsample values are *extended* with the delta's hash values (the
        hash is elementwise over component indices, so the refresh is exact
        -- sessions with restricted sketches in flight keep working through
        a neighbour's update), and every cached stream-sketch state is
        refreshed *incrementally* through the merge layer -- only the delta
        is sketched.

        **Idempotency.** Coordinators stamp each batch with a per-session
        monotonically increasing ``seq``; a batch whose seq the worker has
        already applied is acked *without re-applying* (a retried wave
        after a lost reply must not double-count), and a re-sent seq whose
        contents differ from the applied batch raises a typed error instead
        of silently diverging.
        """
        d_idx, d_val = frame.entry(0)
        ((d_idx, d_val),) = check_delta_components(
            [(d_idx, d_val)], 1, self._dimension
        )
        meta = frame.meta
        session = str(meta.get("session", ""))
        seq = meta.get("seq")
        fingerprint = (
            int(d_idx.size),
            int(d_idx.sum()) if d_idx.size else 0,
            float(d_val.sum()) if d_val.size else 0.0,
        )
        with self._stream_lock:
            if seq is not None:
                last = self._applied_updates.get(session)
                if last is not None and int(seq) <= last[0]:
                    if int(seq) == last[0] and tuple(last[1:]) != fingerprint:
                        raise WorkerProtocolError(
                            f"update seq {seq} of session {session!r} was "
                            "re-sent with different contents; the stream has "
                            "diverged from the applied batch"
                        )
                    telemetry = obs.active()
                    if telemetry is not None:
                        telemetry.metrics.counter("worker.update.deduped").add(1)
                    return wire.encode_frame(
                        "ack",
                        {"support": int(self._component[0].size), "applied": False},
                    )
            if d_idx.size:
                idx, val = self._component[:2]
                new_idx = np.concatenate((idx, d_idx))
                new_val = np.concatenate((val, d_val))
                self._component = (
                    new_idx,
                    new_val,
                    *DistributedVector._sorted_coalesced(new_idx, new_val),
                )
                for state in self._stream_states.values():
                    state.ingest(d_idx, d_val)
                self._refresh_subsample_caches(idx, d_idx)
            if seq is not None:
                if session not in self._applied_updates:
                    while len(self._applied_updates) >= self._max_sessions:
                        self._applied_updates.popitem(last=False)
                self._applied_updates[session] = (int(seq), *fingerprint)
                self._applied_updates.move_to_end(session)
        return wire.encode_frame(
            "ack", {"support": int(self._component[0].size), "applied": True}
        )

    def _refresh_subsample_caches(self, old_idx: np.ndarray, d_idx: np.ndarray) -> None:
        """Refresh every cached ``g`` for an appended delta (stream lock held).

        A cached entry is ``g = hash(component indices)`` elementwise, and
        an update *appends* ``d_idx`` -- so the exact post-update cache is
        ``concat(g, hash(d_idx))``, computed once per token over just the
        delta.  This scopes invalidation to what the component change
        actually staled: nothing, for entries in step with the component.
        An entry whose values no longer line up with the pre-update
        component (a concurrent subsample raced a newer snapshot in) cannot
        be refreshed; it is dropped and counted in
        ``worker.subsample.invalidations`` so cross-tenant interference
        stays visible -- the historical behaviour (wiping *every* session's
        cache, hard-failing neighbours with restricted sketches in flight)
        would count one invalidation per cached token here.
        """
        telemetry = obs.active()
        invalidated = 0
        with self._subsample_lock:
            for cache in self._subsample_g.values():
                for token in list(cache):
                    values, coefficients, domain_scale = cache[token]
                    if values.shape != old_idx.shape:
                        del cache[token]
                        invalidated += 1
                        continue
                    subsample = SubsampleHash.from_coefficients(
                        domain_scale, coefficients
                    )
                    cache[token] = (
                        np.concatenate((values, subsample(d_idx))),
                        coefficients,
                        domain_scale,
                    )
        if invalidated and telemetry is not None:
            telemetry.metrics.counter("worker.subsample.invalidations").add(invalidated)

    def _op_stream_sketch(self, frame) -> bytes:
        """Export this component's CountSketch state for a named stream.

        The first call for a stream sketches the component from scratch;
        later calls (after `update` ops) serve the incrementally refreshed
        state -- bit-identical to resketching for integer-weighted streams.
        A coefficient change under the same stream name rebuilds the state
        from scratch (fresh coefficients mean a fresh sketch family).
        States are namespaced by the coordinator's session id (like the
        subsample caches) so concurrent clients reusing stream names never
        evict or rebuild each other's states.
        """
        meta = frame.meta
        bucket, sign = frame.entry(0)
        sketch = CountSketch.from_coefficients(
            np.asarray(bucket, dtype=np.int64),
            np.asarray(sign, dtype=np.int64),
            self._dimension,
            int(meta["width"]),
        )
        key = (str(meta.get("session", "")), str(meta["stream"]))
        telemetry = obs.active()
        with self._stream_lock:
            state = self._stream_states.get(key)
            if state is not None and state.matches(sketch):
                self._stream_states.move_to_end(key)
                if telemetry is not None:
                    telemetry.metrics.counter("worker.stream.hits").add(1)
            else:
                if key not in self._stream_states:
                    while len(self._stream_states) >= self._max_stream_states:
                        self._stream_states.popitem(last=False)
                        if telemetry is not None:
                            telemetry.metrics.counter("worker.stream.evictions").add(1)
                state = StreamingSketchState(sketch, *self._component[:2])
                self._stream_states[key] = state
                self._stream_states.move_to_end(key)
                if telemetry is not None:
                    telemetry.metrics.counter("worker.stream.misses").add(1)
            table = state.state.table
        return wire.encode_frame("state", {}, [(meta["tables_tag"], table)])

    # ------------------------------------------------------------------ #
    # supervision ops (uncharged control plane)
    # ------------------------------------------------------------------ #
    def _op_ping(self, frame) -> bytes:
        """Cheap liveness probe: support plus the last applied delta seq.

        Carries no entries in either direction -- pure framing overhead,
        zero charged words -- so a supervisor can heartbeat as often as it
        likes without touching the per-tag ledger.
        """
        session = str(frame.meta.get("session", ""))
        with self._stream_lock:
            applied = self._applied_updates.get(session)
        return wire.encode_frame(
            "pong",
            {
                "support": int(self._component[0].size),
                "seq": int(applied[0]) if applied is not None else 0,
                "name": self._name,
            },
        )

    def _op_checkpoint(self, frame) -> bytes:
        """Export everything a replacement worker needs, as one snapshot.

        The component arrays, the requesting session's exactly-once update
        ledger entry and its cached stream-sketch states travel together as
        a single *untagged* :class:`~repro.runtime.state.WorkerCheckpoint`
        payload -- control plane like the delta waves, so checkpoint cadence
        never shows up in the charged-word ledger.  Snapshotting under the
        stream lock keeps the component and the seq ledger mutually
        consistent: a checkpoint can never hold an update the ledger does
        not know about, or vice versa.
        """
        session = str(frame.meta.get("session", ""))
        with self._stream_lock:
            idx, val = self._component[:2]
            applied = self._applied_updates.get(session)
            streams = {
                stream: state.state
                for (owner, stream), state in self._stream_states.items()
                if owner == session
            }
        checkpoint = WorkerCheckpoint(
            dimension=self._dimension,
            indices=idx,
            values=val,
            session=session,
            applied_update=applied,
            stream_states=streams,
        )
        return wire.encode_frame(
            "checkpoint",
            {"support": int(idx.size), "words": checkpoint.word_count()},
            [(None, checkpoint._as_payload())],
        )

    def _op_restore(self, frame) -> bytes:
        """Adopt a checkpointed snapshot verbatim (the failover inverse).

        Installs the checkpoint's component (plus a freshly derived sorted
        lookup view), its session's update ledger entry and its cached
        stream states -- adopted without resketching via
        :meth:`~repro.backend.streaming.StreamingSketchState.from_state`.
        Everything else is dropped: other sessions' stream states and every
        cached subsample hash were computed against the component this op
        replaces, so serving them would silently answer from a stale
        component.  (Their owners re-send ``subsample``/``stream_sketch``
        frames on demand; both are idempotent.)
        """
        checkpoint = WorkerCheckpoint.from_payload(frame.entry(0))
        if checkpoint.dimension != self._dimension:
            raise DimensionMismatchError(
                f"checkpoint covers dimension {checkpoint.dimension}, this "
                f"worker serves {self._dimension}"
            )
        idx, val = checkpoint.indices, checkpoint.values
        component = (idx, val, *DistributedVector._sorted_coalesced(idx, val))
        with self._stream_lock:
            self._component = component
            self._stream_states.clear()
            for stream, state in checkpoint.stream_states.items():
                self._stream_states[(checkpoint.session, stream)] = (
                    StreamingSketchState.from_state(state.make_sketch(), state)
                )
            self._applied_updates.pop(checkpoint.session, None)
            if checkpoint.applied_update is not None:
                self._applied_updates[checkpoint.session] = checkpoint.applied_update
        with self._subsample_lock:
            invalidated = sum(len(cache) for cache in self._subsample_g.values())
            self._subsample_g.clear()
            self._session_tenants.clear()
        telemetry = obs.active()
        if invalidated and telemetry is not None:
            telemetry.metrics.counter("worker.subsample.invalidations").add(invalidated)
        return wire.encode_frame(
            "ack", {"restored": True, "support": int(idx.size)}
        )

    def _op_shutdown(self, frame) -> bytes:
        self.shutdown_requested = True
        return wire.encode_frame("ack", {"shutdown": True})


# --------------------------------------------------------------------------- #
# coordinator side
# --------------------------------------------------------------------------- #
class RemoteVector(DistributedVector):
    """A distributed vector whose worker components live behind transports.

    Server 0's component is held locally (the coordinator is the Central
    Processor and stores data like any server); servers ``1..s-1`` are
    reachable only through their :class:`~repro.runtime.transport.Transport`.
    The per-server seams of :class:`DistributedVector` are overridden to
    broadcast the hash coefficients the simulation charges and to receive
    the workers' tables/values as tagged wire sections, so the inherited
    protocol code runs unmodified.
    """

    def __init__(
        self,
        transports: Sequence[Transport],
        dimension: int,
        network: TransportNetwork,
        local_component: Tuple[np.ndarray, np.ndarray],
        *,
        restriction: Optional[Tuple[int, int]] = None,
        token_counter: Optional[itertools.count] = None,
        session: str = "",
        tenant: str = "",
        pool: Optional[ThreadPoolExecutor] = None,
        supervisor=None,
        subsample_frames: Optional[dict] = None,
    ) -> None:
        empty = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=float))
        components = [local_component] + [empty] * len(transports)
        super().__init__(components, dimension, network)
        # Shared BY REFERENCE with the owning session (and its other open
        # vectors): when the supervisor swaps a recovered worker's transport
        # into the list, every view must see the replacement immediately.
        self._transports = (
            transports if isinstance(transports, list) else list(transports)
        )
        self._restriction = restriction
        self._token_counter = token_counter if token_counter is not None else itertools.count()
        self._session = session
        self._tenant = tenant
        self._pool = pool
        self._supervisor = supervisor
        self._local_g: dict[int, np.ndarray] = {}
        # token -> the encoded subsample frame that installed it, shared BY
        # REFERENCE with every restricted clone: if a worker LRU-evicts the
        # whole session mid-protocol, the coordinator re-sends the retained
        # frame instead of hard-failing the run.
        self._subsample_frames: dict = (
            subsample_frames if subsample_frames is not None else {}
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _scatter(self, op: str, frame: bytes, sections, overhead: int, recover=None):
        """One broadcast wave to every worker (pipelined when a pool is set)."""
        return _rpc_scatter(
            self._network, self._transports, op, frame, sections, overhead,
            pool=self._pool, supervisor=self._supervisor, recover=recover,
        )

    def _recover_missing_subsample(self, worker: int, frame: bytes, reply):
        """Re-install an LRU-evicted session's subsample cache and retry.

        A shared worker may evict this session's whole cache between the
        ``subsample`` wave and a later restricted ``sketch`` wave (another
        tenant opened sessions past ``max_sessions``).  The op is a pure
        read over cached state, so the fix is to re-send the retained
        subsample frame and re-issue the sketch -- directly on the worker's
        transport, off the ledger, exactly like supervisor replays: the
        charged words then match a run where no eviction happened.
        """
        if self._restriction is None:
            return None
        if reply.meta.get("type") != "WorkerProtocolError":
            return None
        if "send a 'subsample' frame first" not in str(reply.meta.get("message", "")):
            return None
        token, _ = self._restriction
        subsample_frame = self._subsample_frames.get(token)
        if subsample_frame is None:
            return None
        transport = self._transports[worker]
        resend = wire.decode_frame(transport.request(subsample_frame))
        if resend.op == "error":
            return None
        retry = wire.decode_frame(transport.request(frame))
        if retry.op == "error":
            return None
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.metrics.counter("coordinator.subsample.resends").add(1)
        return retry

    def _sketch_meta(self) -> dict:
        if self._restriction is None:
            return {"token": None, "threshold": None, "session": self._session}
        token, threshold = self._restriction
        return {"token": token, "threshold": threshold, "session": self._session}

    # ------------------------------------------------------------------ #
    # seams
    # ------------------------------------------------------------------ #
    def batched_sketch_tables(
        self,
        batched,
        domain_assignment: np.ndarray,
        *,
        bucket_hash=None,
        nonempty_buckets=None,
        tag: str = "",
    ) -> List[np.ndarray]:
        if bucket_hash is None or nonempty_buckets is None:
            raise ValueError(
                "remote sketching needs the broadcast bucket hash and the "
                "occupied-bucket list"
            )
        nonempty = np.asarray(list(nonempty_buckets), dtype=np.int64)
        tables: List[np.ndarray] = []
        idx, val = self._components[0]
        if idx.size == 0:
            tables.append(batched.empty_tables())
        else:
            tables.append(batched.sketch_assigned(idx, val, domain_assignment[idx]))
        bucket_coeffs, sign_coeffs = batched.broadcast_coefficients()
        compact_bucket = np.ascontiguousarray(bucket_coeffs[nonempty])
        compact_sign = np.ascontiguousarray(sign_coeffs[nonempty])
        meta = {
            **self._sketch_meta(),
            "num_buckets": batched.num_buckets,
            "depth": batched.depth,
            "width": batched.width,
            "nonempty": [int(bucket) for bucket in nonempty],
            "tables_tag": f"{tag}:bucket:tables",
        }
        entries = [
            (f"{tag}:seeds", np.asarray(bucket_hash.coefficients, dtype=np.int64)),
            (f"{tag}:bucket:seeds", (compact_bucket, compact_sign)),
        ]
        # The broadcast is identical for every worker: encode it once, then
        # scatter it to all workers in one wave (pipelined under the pool).
        frame, sections, overhead = wire.encode_frame_with_stats("sketch", meta, entries)
        expected = (nonempty.size, batched.depth, batched.width)
        replies = self._scatter(
            "sketch", frame, sections, overhead,
            recover=self._recover_missing_subsample,
        )
        for worker, reply in enumerate(replies):
            compact_stack = np.asarray(reply.entry(0), dtype=float)
            if compact_stack.shape != expected:
                raise WorkerProtocolError(
                    f"worker {worker + 1} returned a stack of shape "
                    f"{compact_stack.shape}, expected {expected}"
                )
            full = np.zeros((batched.num_buckets, batched.depth, batched.width))
            full[nonempty] = compact_stack
            tables.append(full)
        return tables

    def subsample_restrictor(self, subsample, *, tag: str = ""):
        token = next(self._token_counter)
        coefficients = np.asarray(subsample.coefficients, dtype=np.int64)
        meta = {
            "token": token,
            "domain_scale": int(subsample.domain_scale),
            "session": self._session,
        }
        if self._tenant:
            # Only tenant-aware runs carry the extra key: framing overhead
            # (and therefore the byte ledger) of plain runs is unchanged.
            meta["tenant"] = self._tenant
        frame, sections, overhead = wire.encode_frame_with_stats(
            "subsample", meta, [(f"{tag}:seeds", coefficients)]
        )
        self._scatter("subsample", frame, sections, overhead)
        # Retained for mid-protocol recovery: a shared worker may evict the
        # session before the restricted sketch waves land.
        self._subsample_frames[token] = frame
        idx, _ = self._components[0]
        self._local_g[token] = (
            subsample(idx) if idx.size else np.zeros(0, dtype=np.int64)
        )
        return _RemoteRestrictor(self, subsample, token)

    def _restricted_clone(self, token: int, threshold: int) -> "RemoteVector":
        idx, val = self._components[0]
        g = self._local_g[token]
        mask = g < threshold
        clone = RemoteVector(
            self._transports,
            self._dimension,
            self._network,
            (idx[mask], val[mask]),
            restriction=(token, int(threshold)),
            token_counter=self._token_counter,
            session=self._session,
            tenant=self._tenant,
            pool=self._pool,
            supervisor=self._supervisor,
            subsample_frames=self._subsample_frames,
        )
        return clone

    def collect(self, indices: Sequence[int], tag: str = "collect_entries") -> np.ndarray:
        if self._restriction is not None:
            # Workers deliberately answer collect over their full component
            # (the protocols only ever verify exact values on the base
            # vector); summing that with a restricted local component would
            # silently produce a hybrid no simulation computes.
            raise NotImplementedError(
                "collect on a level-restricted remote vector is not "
                "supported; collect on the base vector instead"
            )
        query = np.asarray(indices, dtype=np.int64)
        if query.ndim != 1:
            raise ValueError("indices must be one-dimensional")
        if query.size == 0:
            return np.zeros(0)
        if query.min() < 0 or query.max() >= self._dimension:
            raise DimensionMismatchError(
                f"indices must lie in [0, {self._dimension - 1}]"
            )
        total = np.zeros(query.size, dtype=float)
        idx, val = self._components[0]
        total += lookup_sorted(*self._sorted_coalesced(idx, val), query)
        frame, sections, overhead = wire.encode_frame_with_stats(
            "collect", {"tag": tag}, [(None, query)]
        )
        for worker, reply in enumerate(self._scatter("collect", frame, sections, overhead)):
            values = np.asarray(reply.entry(0), dtype=float)
            if values.shape != query.shape:
                raise WorkerProtocolError(
                    f"worker {worker + 1} returned {values.shape[0] if values.ndim else 0} "
                    f"values for {query.size} queried coordinates"
                )
            self._network.send(worker + 1, 0, values, tag=tag)
            total += values
        return total

    # ------------------------------------------------------------------ #
    # operations that would need the remote raw data
    # ------------------------------------------------------------------ #
    def local_component(self, server: int):
        if server == 0:
            return self._components[0]
        raise NotImplementedError(
            f"server {server}'s component lives behind a transport; remote "
            "vectors only expose per-server work through the protocol seams"
        )

    def restrict(self, keep):
        raise NotImplementedError(
            "remote vectors restrict through subsample_restrictor(); "
            "arbitrary predicates would require shipping the raw components"
        )

    def restrict_by_masks(self, masks):
        raise NotImplementedError(
            "remote vectors restrict through subsample_restrictor()"
        )

    def apply_deltas(self, deltas):
        raise NotImplementedError(
            "transport-backed vectors ingest deltas through "
            "CoordinatorService.apply_deltas (each worker must receive its "
            "own shard of the stream)"
        )

    def support_size(self) -> int:
        raise NotImplementedError(
            "the union support is not observable without collecting every "
            "worker's coordinates"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RemoteVector(dimension={self._dimension}, "
            f"workers={len(self._transports)}, restricted={self._restriction is not None})"
        )


class _RemoteRestrictor:
    """Level restrictor over worker-side cached subsample values."""

    def __init__(self, vector: RemoteVector, subsample, token: int) -> None:
        self._vector = vector
        self._subsample = subsample
        self._token = token

    def restrict(self, level: int) -> RemoteVector:
        return self._vector._restricted_clone(
            self._token, self._subsample.level_threshold(level)
        )


class CoordinatorService(ExecutionSession):
    """The Central Processor of a transport-backed cluster.

    The transport implementation of the
    :class:`~repro.backend.base.ExecutionSession` contract: the protocol
    entry points (``z_heavy_hitters``/``estimate``/``sample``), streaming
    delta accounting and the session lifecycle are inherited from the
    shared layer; this class supplies the seam plumbing -- transport-backed
    vectors, the worker handshake/shutdown, the per-worker delta shipment
    and the wire-audited byte ledger.

    Parameters
    ----------
    transports:
        One :class:`~repro.runtime.transport.Transport` per worker (servers
        ``1..s-1`` in protocol order).
    dimension:
        Length of the implicitly summed vector.
    local_component:
        Server 0's own sparse component (defaults to empty -- a pure
        coordinator).
    handshake:
        Verify every worker agrees on ``dimension`` at construction.
    concurrency:
        Width of the scatter waves: how many worker round-trips are kept in
        flight at once by the per-server seams.  Defaults to one wave over
        *all* workers (fully pipelined); ``1`` reproduces the sequential
        worker-by-worker schedule.  Draws, estimates and per-tag word/byte
        accounting are **identical** under every setting -- the schedule
        only moves wall-clock time.
    supervisor:
        An optional :class:`~repro.runtime.supervisor.WorkerSupervisor`.
        Attached right after the handshake (which itself runs unsupervised,
        so construction against dead workers still fails fast): it takes an
        initial checkpoint of every worker and from then on heals transient
        wave failures -- respawn/reconnect, checkpoint restore, journal
        replay, whole-wave re-issue -- transparently to the protocol code.
        Recovery preserves bit-identity: a same-seed run with a mid-protocol
        worker kill produces the same draws, estimates and per-tag charged
        words as an uninterrupted run.
    """

    def __init__(
        self,
        transports: Sequence[Transport],
        dimension: int,
        local_component: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        *,
        keep_messages: bool = False,
        handshake: bool = True,
        concurrency: Optional[int] = None,
        supervisor=None,
        tenant: str = "",
        scatter_loop=None,
    ) -> None:
        self._transports = list(transports)
        self._supervisor = supervisor
        self._tenant = str(tenant)
        #: An owned :class:`~repro.runtime.transport.EventLoopThread`, closed
        #: with the session.  Ownership only -- routing is duck-typed off the
        #: transports themselves (their ``scatter_loop`` attribute).
        self._scatter_loop = scatter_loop
        self._dimension = int(dimension)
        if local_component is None:
            local_component = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=float))
        self._local = (
            np.asarray(local_component[0], dtype=np.int64),
            np.asarray(local_component[1], dtype=float),
        )
        self._network = TransportNetwork(
            len(self._transports) + 1, keep_messages=keep_messages
        )
        self._token_counter = itertools.count()
        #: Namespaces this coordinator's cache tokens on shared workers so
        #: concurrent clients never collide (control plane only -- the
        #: session id is framing metadata, never charged words).
        self._session = uuid.uuid4().hex
        #: Server 0's own stream-sketch states (stream name -> state),
        #: the coordinator-side mirror of the workers' caches.
        self._streams: "OrderedDict[str, StreamingSketchState]" = OrderedDict()
        #: Per-session sequence number of the last *fully acknowledged*
        #: delta batch; only advanced after every worker acked, so a caller
        #: retrying a failed :meth:`apply_deltas` re-sends the same seq and
        #: workers that already applied it dedupe instead of double-counting.
        self._delta_seq = 0
        workers = len(self._transports)
        if concurrency is None:
            concurrency = workers
        self._concurrency = max(1, min(int(concurrency), max(workers, 1)))
        # Async-native transports multiplex a wave on one shared event loop:
        # a thread pool would only add handoff latency, so skip it.  The
        # serving path holds many concurrent sessions per process; one loop
        # instead of one pool per session is what makes that scale.
        async_native = workers > 0 and all(
            getattr(transport, "scatter_loop", None) is not None
            for transport in self._transports
        )
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=self._concurrency,
                thread_name_prefix="coordinator-scatter",
            )
            if self._concurrency > 1 and workers > 1 and not async_native
            else None
        )
        if handshake:
            with obs.span("handshake", workers=workers, session=self._session):
                frame, sections, overhead = wire.encode_frame_with_stats("hello")
                replies = _rpc_scatter(
                    self._network, self._transports, "hello",
                    frame, sections, overhead, pool=self._pool,
                )
                for worker, reply in enumerate(replies):
                    remote_dimension = int(reply.meta.get("dimension", -1))
                    if remote_dimension != self._dimension:
                        raise DimensionMismatchError(
                            f"worker {worker + 1} serves dimension {remote_dimension}, "
                            f"coordinator expects {self._dimension}"
                        )
        if self._supervisor is not None:
            self._supervisor.attach(self)

    @property
    def supervisor(self):
        """The attached :class:`~repro.runtime.supervisor.WorkerSupervisor` (or None)."""
        return self._supervisor

    @property
    def dimension(self) -> int:
        """Length of the implicitly summed vector."""
        return self._dimension

    @property
    def network(self) -> TransportNetwork:
        """The twin network accounting both words and wire bytes."""
        return self._network

    @property
    def num_servers(self) -> int:
        """Workers plus the coordinator itself."""
        return len(self._transports) + 1

    @property
    def concurrency(self) -> int:
        """How many worker round-trips each scatter wave keeps in flight."""
        return self._concurrency

    def _check_protocol_ready(self) -> None:
        if not engine.fused_enabled():
            raise RuntimeError(
                "the runtime services require the fused engine (the naive "
                "reference engine iterates per-bucket restricted vectors, "
                "which would ship raw components)"
            )

    def vector(self) -> RemoteVector:
        """A fresh transport-backed view of the implicitly summed vector."""
        return RemoteVector(
            self._transports,
            self._dimension,
            self._network,
            self._local,
            token_counter=self._token_counter,
            session=self._session,
            tenant=self._tenant,
            pool=self._pool,
            supervisor=self._supervisor,
        )

    # ------------------------------------------------------------------ #
    # streaming seams
    # ------------------------------------------------------------------ #
    def apply_deltas(self, deltas, *, tag: str = "stream:update") -> None:
        """Ship each worker its own delta shard and fold in server 0's locally.

        Delta arrays travel as *untagged* control entries (stream ingestion
        at the servers is free local work in every backend, exactly like
        the initial data placement), so no words are charged and the wire
        audit stays exact.  Workers refresh their cached stream-sketch
        states incrementally; the coordinator's own states mirror that.

        **Failure/retry contract.** The worker wave runs *before* any
        coordinator-side state changes, and every frame is stamped with a
        per-session sequence number that only advances once the whole wave
        acked.  If a worker fails mid-wave, re-calling this method with the
        *same batch* is safe: workers that already applied it recognise the
        seq and ack without re-applying, the stragglers apply it, and only
        then does the coordinator commit its own shard.  (Submitting a
        *different* batch after a partial failure is detected worker-side
        and raises a typed error.)
        """
        cleaned = check_delta_components(deltas, self.num_servers, self._dimension)
        seq = self._delta_seq + 1
        with obs.span("protocol:apply_deltas", seq=seq, session=self._session):
            self._apply_deltas_inner(cleaned, seq, tag)

    def _apply_deltas_inner(self, cleaned, seq: int, tag: str) -> None:
        if self._transports:
            encoded = [
                wire.encode_frame_with_stats(
                    "update",
                    {"tag": tag, "session": self._session, "seq": seq},
                    [(None, (shard_idx, shard_val))],
                )
                for shard_idx, shard_val in cleaned[1:]
            ]
            _rpc_scatter_each(
                self._network, self._transports, "update", encoded,
                pool=self._pool, supervisor=self._supervisor,
            )
        # Every worker acked (or deduped a retried wave): commit.
        self._delta_seq = seq
        idx, val = self._local
        d_idx, d_val = cleaned[0]
        if d_idx.size:
            self._local = (
                np.concatenate((idx, d_idx)), np.concatenate((val, d_val))
            )
            for state in self._streams.values():
                state.ingest(d_idx, d_val)
        if self._supervisor is not None:
            # Cadenced checkpoints run post-commit: the checkpoint then
            # covers this batch and the journal entry it supersedes.
            self._supervisor.after_update_wave()

    def _stream_sketch_states(self, sketch, stream: str, tag: str):
        empty_state = sketch.export_state()
        local = self._streams.get(stream)
        if local is not None and local.matches(sketch):
            self._streams.move_to_end(stream)
        else:
            if stream not in self._streams:
                while len(self._streams) >= self.MAX_STREAM_STATES:
                    self._streams.popitem(last=False)
            local = StreamingSketchState(sketch, *self._local)
            self._streams[stream] = local
            self._streams.move_to_end(stream)
        states = [local.state]
        meta = {
            "stream": stream,
            "session": self._session,
            "width": sketch.width,
            "tables_tag": f"{tag}:tables",
        }
        entries = [
            (f"{tag}:seeds", (empty_state.bucket_coeffs, empty_state.sign_coeffs))
        ]
        frame, sections, overhead = wire.encode_frame_with_stats(
            "stream_sketch", meta, entries
        )
        replies = self._scatter_broadcast("stream_sketch", frame, sections, overhead)
        from repro.runtime.state import CountSketchState

        expected = (sketch.depth, sketch.width)
        for worker, reply in enumerate(replies):
            table = np.asarray(reply.entry(0), dtype=float)
            if table.shape != expected:
                raise WorkerProtocolError(
                    f"worker {worker + 1} returned a stream state of shape "
                    f"{table.shape}, expected {expected}"
                )
            states.append(
                CountSketchState(
                    depth=sketch.depth,
                    width=sketch.width,
                    domain=sketch.domain,
                    bucket_coeffs=empty_state.bucket_coeffs,
                    sign_coeffs=empty_state.sign_coeffs,
                    table=table,
                )
            )
        return states

    def _scatter_broadcast(self, op: str, frame: bytes, sections, overhead: int):
        """One accounted broadcast wave over every worker transport."""
        return _rpc_scatter(
            self._network, self._transports, op, frame, sections, overhead,
            pool=self._pool, supervisor=self._supervisor,
        )

    def _degraded_estimate(self, weight_fn, *, config, seed, cause):
        """Answer ``estimate(..., stale_ok=True)`` from the last checkpoints.

        Runs the *simulated* Z-estimator over the coordinator's own
        component plus every worker's last checkpointed component, on a
        throwaway network -- a degraded answer moves no wire traffic and
        charges nothing to this session's ledger.  Exact for the state as of
        the checkpoints; anything the lost worker ingested afterwards is
        missing, which is why the result carries an explicit ``stale`` flag.
        """
        if self._supervisor is None:
            return None
        checkpoints = self._supervisor.checkpoints
        if any(worker not in checkpoints for worker in range(len(self._transports))):
            return None
        from repro.distributed.network import Network
        from repro.runtime.supervisor import DegradedEstimate
        from repro.sketch.z_estimator import ZEstimator

        components = [self._local] + [
            (checkpoints[worker].indices, checkpoints[worker].values)
            for worker in range(len(self._transports))
        ]
        vector = DistributedVector(
            components, self._dimension, Network(self.num_servers)
        )
        estimator = ZEstimator(
            weight_fn,
            epsilon=config.epsilon,
            hh_params=config.hh_params,
            num_levels=config.num_levels,
            max_levels=config.max_levels,
            min_level_count=config.min_level_count,
            seed=seed,
        )
        return DegradedEstimate(
            estimate=estimator.estimate(vector),
            stale=True,
            lost_workers=self._supervisor.lost_workers,
            cause=f"{type(cause).__name__}: {cause}",
        )

    # ------------------------------------------------------------------ #
    # accounting and lifecycle
    # ------------------------------------------------------------------ #
    def verify_wire_accounting(self):
        """Assert real bytes equal 8x the charged words for every tag."""
        return self._network.verify_wire_accounting()

    def verify_accounting(self):
        """The session-contract audit: the real wire ledger, verified."""
        return self.verify_wire_accounting()

    def shutdown_workers(self) -> None:
        """Ask every worker to stop serving (their servers stop accepting)."""
        if not self._transports:
            return
        frame, sections, overhead = wire.encode_frame_with_stats("shutdown")
        self._scatter_broadcast("shutdown", frame, sections, overhead)

    def close(self) -> None:
        """Close the supervisor, every transport and the scatter pool (idempotent)."""
        if self._supervisor is not None:
            self._supervisor.close()
        for transport in self._transports:
            transport.close()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        if self._scatter_loop is not None:
            # After the transports: their close() may still need the loop.
            self._scatter_loop.close()
            self._scatter_loop = None
