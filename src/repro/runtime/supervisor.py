"""Supervision and recovery for transport-backed coordinator sessions.

The paper's protocol assumes every server survives the whole run; real
workers die mid-wave.  A :class:`WorkerSupervisor` closes that gap for
:class:`~repro.runtime.service.CoordinatorService` sessions:

* **heartbeats** -- a cheap ``ping`` op probes every worker, either
  synchronously (:meth:`WorkerSupervisor.heartbeat`) or from an optional
  background monitor thread (observe-only: it uses its own probe
  transports, never the coordinator's, which are single-threaded);
* **checkpoints** -- each worker exports its component + exactly-once
  update ledger + cached stream-sketch states as one
  :class:`~repro.runtime.state.WorkerCheckpoint` (the ``checkpoint`` op),
  taken at attach time and after every ``checkpoint_every``-th delta wave;
* **failover** -- when a wave fails transiently the supervisor probes every
  worker, and for each dead one: respawns-or-reconnects through the
  configured ``respawner``, installs the last checkpoint (the ``restore``
  op), replays the journaled post-checkpoint frames, swaps the fresh
  transport into the coordinator's shared list, and lets the service
  re-issue the whole wave.  Every protocol op is idempotent and updates are
  deduplicated by their per-session ``seq``, so the re-issued wave applies
  **exactly once** -- a same-seed run with a mid-protocol worker kill
  produces bit-identical draws, estimates and per-tag charged words to an
  uninterrupted run.

Accounting: supervision is pure control plane.  Heartbeat and checkpoint
frames carry only untagged entries and are recorded as control *overhead*
(like delta waves -- zero charged words); recovery traffic (probes,
``restore``, replayed frames) is not recorded at all, because the original
wave's bytes were already recorded when it was first issued.  The wire
audit (:meth:`~repro.distributed.network.TransportNetwork.verify_wire_accounting`)
therefore stays exact across a recovery.

When a worker cannot be recovered (no respawner, restart budget exhausted,
or the restore itself fails) a typed
:class:`~repro.core.errors.WorkerLostError` / ``RecoveryError`` surfaces;
sessions may then answer ``estimate(..., stale_ok=True)`` from the last
checkpoints, wrapped in a :class:`DegradedEstimate` with an explicit
staleness flag.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.errors import (
    RecoveryError,
    WireFormatError,
    WorkerLostError,
    WorkerProtocolError,
    WorkerTimeoutError,
)
from repro.runtime import wire
from repro.runtime.state import WorkerCheckpoint, checkpoint_from_payload
from repro.runtime.transport import RetryPolicy, Transport
from repro.utils.logging import get_logger

logger = get_logger("runtime.supervisor")

#: :func:`classify_failure` verdicts.
TRANSIENT = "transient"
FATAL = "fatal"


def classify_failure(exc: BaseException) -> str:
    """Classify a failed wave: worth probing/retrying, or a real fault?

    *Transient* failures are the connection-shaped ones -- a timeout, a
    reset, a mid-reply close, or a :class:`WorkerProtocolError` the
    transport wrapped around one (its ``__cause__`` is the connection
    error).  Everything else -- a typed ``error`` frame from a live worker,
    a malformed reply, a wire-format fault -- is *fatal*: the worker
    answered, retrying the same wave would just fail the same way.
    """
    if isinstance(exc, WorkerTimeoutError):
        # Must precede the OSError checks: TimeoutError subclasses OSError.
        return TRANSIENT
    if isinstance(exc, WorkerLostError):
        # Already the outcome of a failed recovery; never retry on it.
        return FATAL
    if isinstance(exc, (ConnectionError, asyncio.IncompleteReadError)):
        return TRANSIENT
    if isinstance(exc, WorkerProtocolError):
        cause = exc.__cause__
        if isinstance(
            cause,
            (ConnectionError, OSError, asyncio.IncompleteReadError, asyncio.TimeoutError),
        ):
            return TRANSIENT
        return FATAL
    if isinstance(exc, WireFormatError):
        return FATAL
    if isinstance(exc, OSError):
        return TRANSIENT
    return FATAL


@dataclass
class WorkerHealth:
    """One worker's probe history, as seen by the supervisor."""

    worker: int
    healthy: bool = True
    consecutive_failures: int = 0
    restarts: int = 0
    last_probe: float = 0.0  #: ``time.monotonic()`` of the last probe (0 = never)


@dataclass(frozen=True)
class DegradedEstimate:
    """An ``estimate`` answered from checkpoints after losing a worker.

    ``estimate`` is a regular :class:`~repro.sketch.z_estimator.ZEstimate`
    computed over the coordinator's component plus every worker's *last
    checkpointed* component -- exact for the state as of those checkpoints,
    but blind to anything the lost worker received afterwards, hence the
    explicit ``stale`` flag.  Computed locally on a throwaway network:
    degraded answers charge nothing to the session's ledger.
    """

    estimate: object
    stale: bool
    lost_workers: Tuple[int, ...]
    cause: str = ""


class WorkerSupervisor:
    """Heartbeats, checkpoints and live failover for one coordinator session.

    Parameters
    ----------
    respawner:
        ``respawner(worker_index) -> Transport`` brings worker ``i`` back --
        by spawning a fresh in-process service (the self-hosting backends)
        or reconnecting to an externally restarted server (``submit
        --max-worker-restarts``).  Without one, a dead worker is immediately
        :class:`~repro.core.errors.WorkerLostError`.
    max_worker_restarts:
        Total restarts the session tolerates *per worker* before declaring
        it lost.
    checkpoint_every:
        Checkpoint cadence: take fresh checkpoints after every N-th
        acknowledged delta wave (the journal covers the waves in between).
    probe_policy:
        :class:`~repro.runtime.transport.RetryPolicy` paced by recovery
        probes (reserved for respawners that need connection backoff).
    heartbeat_interval / probe_factory:
        Enable the background monitor thread: every ``heartbeat_interval``
        seconds it probes each worker through a *fresh* transport from
        ``probe_factory(worker_index)`` (the coordinator's own transports
        are not thread-safe) and records the outcome in :meth:`health`.
        Observe-only -- recovery always happens on the coordinator's
        thread, inside the failed wave's retry loop.
    subsample_journal_size:
        Ring capacity of journaled ``subsample`` broadcast frames; keep it
        at the workers' subsample-cache capacity.
    """

    def __init__(
        self,
        respawner: Optional[Callable[[int], Transport]] = None,
        *,
        max_worker_restarts: int = 2,
        checkpoint_every: int = 1,
        probe_policy: Optional[RetryPolicy] = None,
        heartbeat_interval: Optional[float] = None,
        probe_factory: Optional[Callable[[int], Transport]] = None,
        subsample_journal_size: int = 4,
    ) -> None:
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if heartbeat_interval is not None and probe_factory is None:
            raise ValueError(
                "a background heartbeat needs a probe_factory: the "
                "coordinator's own transports are single-threaded"
            )
        self._respawner = respawner
        self._max_worker_restarts = max(0, int(max_worker_restarts))
        self._checkpoint_every = max(1, int(checkpoint_every))
        self._probe_policy = probe_policy if probe_policy is not None else RetryPolicy()
        self._heartbeat_interval = heartbeat_interval
        self._probe_factory = probe_factory
        self._coordinator = None
        self._lock = threading.Lock()
        self._checkpoints: Dict[int, WorkerCheckpoint] = {}
        #: One journaled wave per un-checkpointed delta batch: the exact
        #: per-worker ``update`` frames, replayed in order on a restore
        #: (the worker's seq ledger makes the replay exactly-once).
        self._update_journal: List[List[bytes]] = []
        #: The most recent ``subsample`` broadcast frames (one ring entry
        #: per token, like the workers' own LRU cache); replayed after the
        #: updates so a restored worker can serve in-flight restricted
        #: sketches.
        self._subsample_journal: Deque[bytes] = deque(
            maxlen=max(1, int(subsample_journal_size))
        )
        self._update_waves = 0
        self._health: Dict[int, WorkerHealth] = {}
        self._lost: set = set()
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def attach(self, coordinator) -> None:
        """Bind to a coordinator session and take checkpoint zero.

        Called by :class:`~repro.runtime.service.CoordinatorService` right
        after its handshake (the handshake itself runs unsupervised --
        construction fails fast).  The initial checkpoints make every
        worker recoverable from the session's very first wave.
        """
        if self._coordinator is not None:
            raise RuntimeError("supervisor is already attached to a session")
        self._coordinator = coordinator
        for worker in range(len(coordinator._transports)):
            self._health[worker] = WorkerHealth(worker)
        self.checkpoint_all()
        if self._heartbeat_interval is not None:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="worker-heartbeat", daemon=True
            )
            self._monitor.start()

    @property
    def attached(self) -> bool:
        return self._coordinator is not None

    def _transports(self) -> List[Transport]:
        if self._coordinator is None:
            raise RuntimeError("supervisor is not attached to a session")
        return self._coordinator._transports

    def _session_id(self) -> str:
        return self._coordinator._session

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def checkpoints(self) -> Dict[int, WorkerCheckpoint]:
        """The last checkpoint per worker index (a snapshot copy)."""
        with self._lock:
            return dict(self._checkpoints)

    @property
    def lost_workers(self) -> Tuple[int, ...]:
        """Workers declared unrecoverable, in index order."""
        with self._lock:
            return tuple(sorted(self._lost))

    @property
    def restarts(self) -> int:
        """Total worker restarts performed so far."""
        with self._lock:
            return sum(health.restarts for health in self._health.values())

    def health(self) -> Dict[int, WorkerHealth]:
        """A snapshot of every worker's probe history."""
        with self._lock:
            return {
                worker: WorkerHealth(
                    worker=health.worker,
                    healthy=health.healthy,
                    consecutive_failures=health.consecutive_failures,
                    restarts=health.restarts,
                    last_probe=health.last_probe,
                )
                for worker, health in self._health.items()
            }

    # ------------------------------------------------------------------ #
    # control-plane rpc
    # ------------------------------------------------------------------ #
    def _control(
        self, transport: Transport, worker: int, op: str, meta=None, entries=(),
        *, record: bool = False,
    ) -> wire.DecodedFrame:
        """One supervision round-trip.  ``record`` books it as overhead.

        Supervision frames carry only untagged entries, so recording them
        touches the control-overhead counter but never the per-tag data
        ledger -- charged words stay identical to an unsupervised run.
        """
        frame, sections, overhead = wire.encode_frame_with_stats(op, meta, entries)
        reply = wire.decode_frame(transport.request(frame))
        if record:
            network = self._coordinator._network
            network.record_frame(sections, overhead)
            network.record_frame(reply.data_sections, reply.overhead_bytes)
        if reply.op == "error":
            raise WorkerProtocolError(
                f"worker {worker + 1} failed op {op!r}: "
                f"{reply.meta.get('type', 'Error')}: {reply.meta.get('message', '')}"
            )
        return reply

    def _ping_frame(self) -> bytes:
        frame, _, _ = wire.encode_frame_with_stats(
            "ping", {"session": self._session_id()}
        )
        return frame

    def _mark(self, worker: int, healthy: bool) -> None:
        with self._lock:
            health = self._health.setdefault(worker, WorkerHealth(worker))
            health.last_probe = time.monotonic()
            health.healthy = healthy
            if healthy:
                health.consecutive_failures = 0
            else:
                health.consecutive_failures += 1

    # ------------------------------------------------------------------ #
    # heartbeats
    # ------------------------------------------------------------------ #
    def heartbeat(self) -> Dict[int, bool]:
        """Probe every worker once over the coordinator's transports.

        Coordinator-thread only (the transports are not thread-safe).  The
        probes are recorded as control overhead; outcomes update
        :meth:`health` and are returned as ``{worker_index: healthy}``.
        """
        transports = self._transports()  # raises when unattached, before tracing
        results: Dict[int, bool] = {}
        telemetry = obs.active()
        with obs.span("supervisor:heartbeat", session=self._session_id()):
            for worker, transport in enumerate(transports):
                try:
                    self._control(
                        transport, worker, "ping",
                        {"session": self._session_id()}, record=True,
                    )
                    healthy = True
                except Exception:  # noqa: BLE001 - any failure means unhealthy
                    healthy = False
                self._mark(worker, healthy)
                results[worker] = healthy
                if telemetry is not None:
                    telemetry.metrics.counter("supervisor.heartbeats").add(1)
                    if not healthy:
                        telemetry.metrics.counter("supervisor.probe_failures").add(1)
        return results

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self._heartbeat_interval):
            coordinator = self._coordinator
            if coordinator is None:  # pragma: no cover - defensive
                return
            ping = self._ping_frame()
            for worker in range(len(coordinator._transports)):
                if self._stop.is_set():
                    return
                try:
                    probe = self._probe_factory(worker)
                except Exception as exc:  # noqa: BLE001 - cannot even build a probe
                    logger.warning(
                        "heartbeat probe construction for worker %d "
                        "(session %s) failed: %s: %s",
                        worker, self._session_id(), type(exc).__name__, exc,
                    )
                    self._mark(worker, False)
                    continue
                try:
                    healthy = probe.probe(ping)
                finally:
                    try:
                        probe.close()
                    except Exception as exc:  # noqa: BLE001 - teardown must not
                        # kill the monitor thread; the probe's verdict stands.
                        logger.debug(
                            "heartbeat probe teardown for worker %d "
                            "(session %s) failed: %s: %s",
                            worker, self._session_id(), type(exc).__name__, exc,
                        )
                self._mark(worker, healthy)

    # ------------------------------------------------------------------ #
    # checkpoints
    # ------------------------------------------------------------------ #
    def checkpoint(self, worker: int) -> WorkerCheckpoint:
        """Take (and store) a fresh checkpoint of one worker.

        A worker that dies *between* an acknowledged wave and its checkpoint
        is recovered from the previous checkpoint plus the journal -- which
        still covers the latest wave -- and then checkpointed again.
        """
        transport = self._transports()[worker]
        meta = {"session": self._session_id()}
        with obs.span("supervisor:checkpoint", worker=worker, session=self._session_id()):
            try:
                reply = self._control(
                    transport, worker, "checkpoint", meta, record=True
                )
            except Exception as exc:  # noqa: BLE001 - classified below
                if classify_failure(exc) == FATAL:
                    raise
                self.recover_worker(worker, cause=exc)
                # The retried frame is part of the run's control plane exactly
                # like the first attempt would have been: record it, or a
                # recovered run books less overhead than an uninterrupted one.
                reply = self._control(
                    self._transports()[worker], worker, "checkpoint", meta, record=True
                )
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.metrics.counter("supervisor.checkpoints").add(1)
        checkpoint = checkpoint_from_payload(reply.entry(0))
        with self._lock:
            self._checkpoints[worker] = checkpoint
        return checkpoint

    def checkpoint_all(self) -> None:
        """Checkpoint every worker, then drop the superseded update journal."""
        for worker in range(len(self._transports())):
            self.checkpoint(worker)
        with self._lock:
            self._update_journal.clear()

    # ------------------------------------------------------------------ #
    # wave observation (journaling)
    # ------------------------------------------------------------------ #
    def observe_wave(self, op: str, frames: Sequence[bytes]) -> None:
        """Journal a wave about to be issued (called by the scatter seam).

        ``update`` waves are journaled per worker until the next checkpoint
        supersedes them; ``subsample`` broadcasts ride a small ring (the
        workers' own cache capacity) so a restored worker can serve
        restricted sketches for in-flight tokens.  Everything else is a
        pure read of worker state -- re-issuing the wave is recovery enough.
        """
        if op == "update":
            with self._lock:
                self._update_journal.append([bytes(frame) for frame in frames])
        elif op == "subsample":
            with self._lock:
                self._subsample_journal.append(bytes(frames[0]))

    def after_update_wave(self) -> None:
        """Cadence hook: called by the coordinator after each committed wave."""
        # The wave counter moves under the lock (the heartbeat monitor reads
        # health snapshots under it); checkpoint_all() re-acquires it per
        # worker, so the cadence decision is made first and acted on after.
        with self._lock:
            self._update_waves += 1
            due = self._update_waves % self._checkpoint_every == 0
        if due:
            self.checkpoint_all()

    def replay_subsamples(self, worker: int) -> None:
        """Re-issue the journaled ``subsample`` broadcasts to one worker.

        Used after a live shard rebalance: migration rebuilds worker
        components through ``restore``/``update`` ops, which drop the
        worker-side subsample caches, so the in-flight restricted-sketch
        tokens are replayed the same way a post-kill recovery replays them.
        Unrecorded, like all recovery traffic -- the broadcasts' bytes were
        booked when first issued.
        """
        with self._lock:
            frames = list(self._subsample_journal)
        transport = self._transports()[worker]
        for frame in frames:
            self._replay(transport, worker, frame)

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def recover_for_retry(
        self, exc: BaseException, *, op: str = "", attempt: int = 1
    ) -> bool:
        """Heal whatever made a wave fail; True means "re-issue the wave".

        Fatal failures return False (the caller re-raises the original).
        Transient ones probe every worker and recover the dead ones; a wave
        that keeps failing past the retry budget raises
        :class:`~repro.core.errors.RecoveryError`, and an unrecoverable
        worker raises :class:`~repro.core.errors.WorkerLostError` (both
        chained from the wave's failure).
        """
        if self._coordinator is None:
            return False
        if classify_failure(exc) == FATAL:
            return False
        if attempt > self._max_worker_restarts + 1:
            raise RecoveryError(
                f"wave {op!r} still failing after {attempt - 1} recovery "
                f"attempt(s): {type(exc).__name__}: {exc}"
            ) from exc
        with obs.span(
            "supervisor:recovery",
            op=op,
            attempt=attempt,
            cause=type(exc).__name__,
            session=self._session_id(),
        ):
            ping = self._ping_frame()
            for worker, transport in enumerate(list(self._transports())):
                if transport.probe(ping):
                    self._mark(worker, True)
                    continue
                self._mark(worker, False)
                self.recover_worker(worker, cause=exc)
        return True

    def recover_worker(
        self, worker: int, *, cause: Optional[BaseException] = None
    ) -> None:
        """Respawn worker ``worker``, restore its checkpoint, replay the journal.

        The fresh transport replaces the dead one *in place* in the
        coordinator's shared transport list, so every open
        :class:`~repro.runtime.service.RemoteVector` sees it immediately.
        Recovery traffic is never recorded: the journaled frames' bytes
        were booked when first issued, and booking them again would break
        the wire audit.
        """
        coordinator = self._coordinator
        if coordinator is None:
            raise RuntimeError("supervisor is not attached to a session")
        logger.info(
            "recovering worker %d of session %s (cause: %s)",
            worker, self._session_id(),
            type(cause).__name__ if cause is not None else "requested",
        )
        with obs.span(
            "supervisor:recover_worker",
            worker=worker,
            session=self._session_id(),
            cause=type(cause).__name__ if cause is not None else None,
        ):
            self._recover_worker_inner(coordinator, worker, cause)
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.metrics.counter("supervisor.restarts").add(1)
            telemetry.metrics.counter(f"supervisor.restarts.{worker}").add(1)

    def _recover_worker_inner(
        self, coordinator, worker: int, cause: Optional[BaseException]
    ) -> None:
        with self._lock:
            health = self._health.setdefault(worker, WorkerHealth(worker))
            if self._respawner is None:
                self._lost.add(worker)
                raise WorkerLostError(
                    f"worker {worker + 1} is unreachable and the supervisor "
                    "has no respawner"
                ) from cause
            if health.restarts >= self._max_worker_restarts:
                self._lost.add(worker)
                raise WorkerLostError(
                    f"worker {worker + 1} exceeded its restart budget "
                    f"({self._max_worker_restarts})"
                ) from cause
            health.restarts += 1
            checkpoint = self._checkpoints.get(worker)
            updates = [frames[worker] for frames in self._update_journal]
            subsamples = list(self._subsample_journal)
        try:
            transport = self._respawner(worker)
        except Exception as exc:  # noqa: BLE001 - typed below
            with self._lock:
                self._lost.add(worker)
            raise RecoveryError(
                f"respawning worker {worker + 1} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        try:
            if checkpoint is not None:
                self._control(
                    transport, worker, "restore",
                    {"session": self._session_id()},
                    [(None, checkpoint._as_payload())],
                )
            for frame in updates:
                self._replay(transport, worker, frame)
            for frame in subsamples:
                self._replay(transport, worker, frame)
        except Exception as exc:  # noqa: BLE001 - typed below
            try:
                transport.close()
            except Exception as teardown_exc:  # noqa: BLE001 - must not mask
                logger.debug(
                    "closing the replacement transport of worker %d "
                    "(session %s) failed: %s: %s",
                    worker, self._session_id(),
                    type(teardown_exc).__name__, teardown_exc,
                )
            with self._lock:
                self._lost.add(worker)
            raise RecoveryError(
                f"restoring worker {worker + 1} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        old = coordinator._transports[worker]
        coordinator._transports[worker] = transport
        try:
            old.close()
        except Exception as teardown_exc:  # noqa: BLE001 - dead anyway
            logger.debug(
                "closing the dead transport of worker %d (session %s) "
                "failed: %s: %s",
                worker, self._session_id(),
                type(teardown_exc).__name__, teardown_exc,
            )
        with self._lock:
            self._lost.discard(worker)
        self._mark(worker, True)

    def _replay(self, transport: Transport, worker: int, frame: bytes) -> None:
        reply = wire.decode_frame(transport.request(frame))
        if reply.op == "error":
            raise WorkerProtocolError(
                f"worker {worker + 1} rejected a replayed frame: "
                f"{reply.meta.get('type', 'Error')}: {reply.meta.get('message', '')}"
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the monitor thread (idempotent); transports stay the session's."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
