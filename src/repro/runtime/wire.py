"""Versioned binary wire format for the runtime subsystem.

The simulated :class:`~repro.distributed.network.Network` measures traffic
in *words* (8 bytes each, ``BYTES_PER_WORD``) without ever serialising a
payload.  This module is the missing half: a compact, versioned binary
codec whose **data section is exactly 8 bytes per word** of the existing
:func:`~repro.distributed.message.payload_word_count` convention, so the
bytes a real transport moves and the words the simulation charges stay
mutually auditable (``data bytes == 8 * words``, asserted per tag by
:meth:`~repro.distributed.network.TransportNetwork.verify_wire_accounting`).

Two encodings are provided:

* **payloads** -- :func:`to_bytes` / :func:`from_bytes` round-trip the
  payload types the protocols actually ship (numpy arrays of the common
  dtypes, scipy sparse matrices, scalars, ASCII strings, containers, and
  :class:`~repro.distributed.message.Message`).  Every element is widened
  to a little-endian 8-byte word on the wire; the original dtype is
  restored from a one-byte framing code, so round-trips are exact.
* **frames** -- :func:`encode_frame` / :func:`decode_frame` wrap an
  operation name, a small metadata dict and a list of *tagged* payload
  entries into one transport message.  Tagged entries are the data plane
  (their body bytes are attributed to the tag's byte ledger); the op,
  metadata, tags and untagged entries are the control plane, counted as
  framing overhead.

Framing (magic, version, type codes, dtype codes, shapes, container
counts) is deliberately *not* part of the word accounting: the paper's
model charges machine numbers, not protocol headers.  :func:`wire_word_count`
returns the word count of the data section and is asserted equal to
``payload_word_count`` for every payload in the codec's domain.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from numbers import Number
from typing import Any, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.core.errors import WireFormatError
from repro.distributed.message import Message, payload_word_count

#: First bytes of every wire buffer.
WIRE_MAGIC = b"RPRW"
#: Version of the wire format emitted by this module.  Version 2 added the
#: fixed request-id section to transport frames (see below); payload buffers
#: are unchanged from version 1 apart from the version field itself.
WIRE_VERSION = 2
#: Bytes per machine word on the wire (matches the accounting convention).
BYTES_PER_WORD = 8

# ---- request-id frame section ---------------------------------------------
# Transport frames carry a fixed-width request id directly after the header
# so that pipelined connections can match out-of-order replies to their
# requests without decoding the whole frame.  The id is framing (never part
# of the word accounting) and lives at a *fixed offset*, so transports can
# peek and stamp it in O(1):
#
#   [0:4)  magic  [4:6) version  [6:7) kind  [7:15) uint64 request id  ...
#
# Workers echo the request id of the frame they are answering; the TCP
# server additionally stamps every reply with the request's id so matching
# holds for arbitrary (even faulty) handlers.
_REQUEST_ID_OFFSET = 7
_REQUEST_ID_END = _REQUEST_ID_OFFSET + 8
_REQUEST_ID_MAX = (1 << 64) - 1

#: Kind byte after the version: a standalone payload or a transport frame.
_KIND_PAYLOAD = 0
_KIND_FRAME = 1

# Node type codes.
_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_FLOAT = 4
_T_SCALAR = 5
_T_ARRAY = 6
_T_SPARSE = 7
_T_STR = 8
_T_LIST = 9
_T_TUPLE = 10
_T_SET = 11
_T_FROZENSET = 12
_T_DICT = 13
_T_MESSAGE = 14

#: Supported array/scalar dtypes: code -> (dtype, widened wire dtype).
_DTYPES: dict[int, tuple[np.dtype, np.dtype]] = {
    0: (np.dtype(np.float64), np.dtype("<f8")),
    1: (np.dtype(np.float32), np.dtype("<f8")),
    2: (np.dtype(np.int64), np.dtype("<i8")),
    3: (np.dtype(np.int32), np.dtype("<i8")),
    4: (np.dtype(np.int16), np.dtype("<i8")),
    5: (np.dtype(np.int8), np.dtype("<i8")),
    6: (np.dtype(np.uint64), np.dtype("<u8")),
    7: (np.dtype(np.uint32), np.dtype("<u8")),
    8: (np.dtype(np.uint16), np.dtype("<u8")),
    9: (np.dtype(np.uint8), np.dtype("<u8")),
    10: (np.dtype(np.bool_), np.dtype("<u8")),
}
_DTYPE_CODES = {dtype: code for code, (dtype, _) in _DTYPES.items()}

_SPARSE_FORMATS = ("csr", "csc", "coo")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class _Encoder:
    """Accumulates the encoded buffer and counts data-section bytes."""

    def __init__(self) -> None:
        self.buf = bytearray()
        self.data_bytes = 0

    def frame(self, data: bytes) -> None:
        """Append framing bytes (headers; never counted as data)."""
        self.buf += data

    def body(self, data: bytes) -> None:
        """Append data-section bytes (counted toward the word accounting)."""
        self.buf += data
        self.data_bytes += len(data)


def _encode_array_body(enc: _Encoder, array: np.ndarray, wide: np.dtype) -> None:
    enc.body(np.ascontiguousarray(array).astype(wide, copy=False).tobytes())


def _encode_str(enc: _Encoder, text: str) -> None:
    if not text.isascii():
        raise WireFormatError(
            "wire strings must be ASCII (the word convention counts 8 "
            f"characters per word); got {text!r}"
        )
    raw = text.encode("ascii")
    words = (len(raw) + 7) // 8
    enc.frame(struct.pack("<BI", _T_STR, len(raw)))
    enc.body(raw + b"\x00" * (words * 8 - len(raw)))


def _encode_node(enc: _Encoder, payload: Any) -> None:
    if payload is None:
        enc.frame(struct.pack("<B", _T_NONE))
        return
    if isinstance(payload, bool):
        enc.frame(struct.pack("<B", _T_TRUE if payload else _T_FALSE))
        enc.body(struct.pack("<q", 1 if payload else 0))
        return
    if isinstance(payload, np.generic):
        code = _DTYPE_CODES.get(payload.dtype)
        if code is None:
            raise WireFormatError(f"unsupported scalar dtype {payload.dtype}")
        enc.frame(struct.pack("<BB", _T_SCALAR, code))
        _encode_array_body(enc, np.asarray(payload).reshape(1), _DTYPES[code][1])
        return
    if isinstance(payload, int):
        if not _INT64_MIN <= payload <= _INT64_MAX:
            raise WireFormatError(f"integer {payload} does not fit one 64-bit word")
        enc.frame(struct.pack("<B", _T_INT))
        enc.body(struct.pack("<q", payload))
        return
    if isinstance(payload, float):
        enc.frame(struct.pack("<B", _T_FLOAT))
        enc.body(struct.pack("<d", payload))
        return
    if isinstance(payload, Number):
        raise WireFormatError(f"unsupported numeric type {type(payload).__name__}")
    if isinstance(payload, np.ndarray):
        code = _DTYPE_CODES.get(payload.dtype)
        if code is None:
            raise WireFormatError(f"unsupported array dtype {payload.dtype}")
        if payload.ndim > 255:
            raise WireFormatError("arrays may have at most 255 dimensions")
        enc.frame(struct.pack("<BBB", _T_ARRAY, code, payload.ndim))
        enc.frame(struct.pack(f"<{payload.ndim}Q", *payload.shape))
        _encode_array_body(enc, payload, _DTYPES[code][1])
        return
    if sparse.issparse(payload):
        if payload.format not in _SPARSE_FORMATS:
            matrix = payload.tocoo()
        else:
            matrix = payload
        fmt = _SPARSE_FORMATS.index(matrix.format if matrix.format in _SPARSE_FORMATS else "coo")
        coo = matrix.tocoo()
        rows, cols = coo.shape
        if rows >= (1 << 32) or cols >= (1 << 32):
            raise WireFormatError("sparse shapes must fit 32 bits per side")
        value_code = _DTYPE_CODES.get(coo.data.dtype)
        if value_code is None:
            raise WireFormatError(f"unsupported sparse value dtype {coo.data.dtype}")
        enc.frame(struct.pack("<BBBQ", _T_SPARSE, fmt, value_code, coo.nnz))
        # Body: one packed shape word + (flat index, value) per stored element
        # = 2 * nnz + 1 words, the payload_word_count convention for sparse.
        enc.body(struct.pack("<Q", (rows << 32) | cols))
        flat = coo.row.astype(np.int64) * np.int64(cols) + coo.col.astype(np.int64)
        _encode_array_body(enc, flat, np.dtype("<i8"))
        _encode_array_body(enc, coo.data, _DTYPES[value_code][1])
        return
    if isinstance(payload, str):
        _encode_str(enc, payload)
        return
    if isinstance(payload, Message):
        if not 0 <= payload.sender < (1 << 32) or not 0 <= payload.receiver < (1 << 32):
            raise WireFormatError("message endpoints must fit 32 bits")
        enc.frame(struct.pack("<BIIq", _T_MESSAGE, payload.sender, payload.receiver, payload.words))
        tag_raw = payload.tag.encode("ascii", errors="strict")
        if len(tag_raw) >= (1 << 16):
            raise WireFormatError("message tags must be shorter than 65536 bytes")
        enc.frame(struct.pack("<H", len(tag_raw)) + tag_raw)
        _encode_node(enc, payload.payload)
        return
    if isinstance(payload, Mapping):
        items = list(payload.items())
        enc.frame(struct.pack("<BI", _T_DICT, len(items)))
        for key, value in items:
            _encode_node(enc, key)
            _encode_node(enc, value)
        return
    if isinstance(payload, (list, tuple, set, frozenset)):
        codes = {list: _T_LIST, tuple: _T_TUPLE, set: _T_SET, frozenset: _T_FROZENSET}
        items = list(payload)
        enc.frame(struct.pack("<BI", codes[type(payload)], len(items)))
        for item in items:
            _encode_node(enc, item)
        return
    if isinstance(payload, Sequence):
        items = list(payload)
        enc.frame(struct.pack("<BI", _T_LIST, len(items)))
        for item in items:
            _encode_node(enc, item)
        return
    raise WireFormatError(f"cannot encode payload of type {type(payload).__name__}")


class _Decoder:
    """Cursor over an encoded buffer, counting data-section bytes read."""

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0
        self.data_bytes = 0

    def take(self, count: int, *, data: bool = False) -> bytes:
        if self.pos + count > len(self.buf):
            raise WireFormatError("truncated wire buffer")
        chunk = self.buf[self.pos : self.pos + count]
        self.pos += count
        if data:
            self.data_bytes += count
        return chunk

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))


def _decode_array_body(dec: _Decoder, count: int, code: int, shape=None) -> np.ndarray:
    dtype, wide = _DTYPES[code]
    raw = dec.take(count * 8, data=True)
    try:
        # errstate: a *corrupted* wide value can overflow the narrow dtype it
        # claims (exact round-trips never do -- encoding widened losslessly);
        # the overflow is not an error, the value is simply wrong bytes.
        with np.errstate(over="ignore", invalid="ignore"):
            array = np.frombuffer(raw, dtype=wide, count=count).astype(dtype)
        if shape is not None:
            array = array.reshape(shape)
    except (ValueError, OverflowError) as exc:
        # e.g. a corrupted shape whose sides exceed numpy's dimension limits
        # even though the element count still fits the buffer.
        raise WireFormatError(f"corrupt array section: {exc}") from exc
    return array


def _decode_ascii(raw: bytes, what: str) -> str:
    try:
        return raw.decode("ascii")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"non-ASCII bytes in wire {what}") from exc


def _decode_node(dec: _Decoder) -> Any:
    (code,) = dec.unpack("<B")
    if code == _T_NONE:
        return None
    if code in (_T_FALSE, _T_TRUE):
        dec.take(8, data=True)
        return code == _T_TRUE
    if code == _T_INT:
        (value,) = struct.unpack("<q", dec.take(8, data=True))
        return value
    if code == _T_FLOAT:
        (value,) = struct.unpack("<d", dec.take(8, data=True))
        return value
    if code == _T_SCALAR:
        (dtype_code,) = dec.unpack("<B")
        if dtype_code not in _DTYPES:
            raise WireFormatError(f"unknown dtype code {dtype_code}")
        return _decode_array_body(dec, 1, dtype_code)[0]
    if code == _T_ARRAY:
        dtype_code, ndim = dec.unpack("<BB")
        if dtype_code not in _DTYPES:
            raise WireFormatError(f"unknown dtype code {dtype_code}")
        shape = dec.unpack(f"<{ndim}Q") if ndim else ()
        count = 1
        for side in shape:
            count *= side
        return _decode_array_body(dec, count, dtype_code, shape)
    if code == _T_SPARSE:
        fmt, value_code, nnz = dec.unpack("<BBQ")
        if fmt >= len(_SPARSE_FORMATS) or value_code not in _DTYPES:
            raise WireFormatError("unknown sparse format or dtype code")
        (packed_shape,) = struct.unpack("<Q", dec.take(8, data=True))
        rows, cols = packed_shape >> 32, packed_shape & 0xFFFFFFFF
        flat = _decode_array_body(dec, nnz, _DTYPE_CODES[np.dtype(np.int64)])
        values = _decode_array_body(dec, nnz, value_code)
        if flat.size and (
            cols == 0 or flat.min() < 0 or flat.max() >= rows * cols
        ):
            raise WireFormatError(
                "sparse flat indices fall outside the declared shape"
            )
        if cols == 0:
            row_idx = np.zeros(0, dtype=np.int64)
            col_idx = np.zeros(0, dtype=np.int64)
        else:
            row_idx, col_idx = np.divmod(flat, np.int64(cols))
        try:
            matrix = sparse.coo_matrix((values, (row_idx, col_idx)), shape=(rows, cols))
            return matrix.asformat(_SPARSE_FORMATS[fmt])
        except (ValueError, TypeError, OverflowError) as exc:
            raise WireFormatError(f"corrupt sparse section: {exc}") from exc
    if code == _T_STR:
        (length,) = dec.unpack("<I")
        words = (length + 7) // 8
        raw = dec.take(words * 8, data=True)
        return _decode_ascii(raw[:length], "string")
    if code == _T_MESSAGE:
        sender, receiver, words = dec.unpack("<IIq")
        (tag_length,) = dec.unpack("<H")
        tag = _decode_ascii(dec.take(tag_length), "message tag")
        payload = _decode_node(dec)
        try:
            return Message(
                sender=sender, receiver=receiver, payload=payload, tag=tag, words=words
            )
        except (ValueError, TypeError) as exc:
            raise WireFormatError(f"corrupt message section: {exc}") from exc
    if code in (_T_LIST, _T_TUPLE, _T_SET, _T_FROZENSET, _T_DICT):
        (count,) = dec.unpack("<I")
        try:
            if code == _T_DICT:
                return {
                    _decode_node(dec): _decode_node(dec) for _ in range(count)
                }
            items = [_decode_node(dec) for _ in range(count)]
            if code == _T_LIST:
                return items
            if code == _T_TUPLE:
                return tuple(items)
            if code == _T_SET:
                return set(items)
            return frozenset(items)
        except TypeError as exc:
            # A corrupted key type code can decode to an unhashable value.
            raise WireFormatError(f"unhashable wire key: {exc}") from exc
    raise WireFormatError(f"unknown wire type code {code}")


def _header(kind: int) -> bytes:
    return WIRE_MAGIC + struct.pack("<HB", WIRE_VERSION, kind)


def _check_header(dec: _Decoder, expected_kind: int) -> None:
    magic = dec.take(4)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad wire magic {magic!r}")
    version, kind = dec.unpack("<HB")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )
    if kind != expected_kind:
        raise WireFormatError(f"expected wire kind {expected_kind}, got {kind}")


# --------------------------------------------------------------------------- #
# public payload API
# --------------------------------------------------------------------------- #
def to_bytes(payload: Any) -> bytes:
    """Serialise ``payload`` into a versioned, self-describing buffer."""
    enc = _Encoder()
    enc.frame(_header(_KIND_PAYLOAD))
    _encode_node(enc, payload)
    return bytes(enc.buf)


def from_bytes(buf: bytes) -> Any:
    """Decode a buffer produced by :func:`to_bytes` (exact round-trip).

    Corrupt input raises :class:`~repro.core.errors.WireFormatError` --
    never a bare ``struct.error``/``IndexError``/``RecursionError``; the
    decoder validates before every read and a final safety net converts
    anything that still slips through (fuzzed single-byte mutations can
    reach surprising code paths).
    """
    with _typed_decode_errors():
        dec = _Decoder(bytes(buf))
        _check_header(dec, _KIND_PAYLOAD)
        payload = _decode_node(dec)
        if dec.pos != len(dec.buf):
            raise WireFormatError(
                f"trailing bytes after payload ({len(dec.buf) - dec.pos} unread)"
            )
        return payload


class _typed_decode_errors:
    """Context manager converting unexpected decode errors to WireFormatError."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, traceback):
        if exc is None or isinstance(exc, WireFormatError):
            return False
        if isinstance(exc, Exception):
            raise WireFormatError(
                f"malformed wire buffer ({exc_type.__name__}: {exc})"
            ) from exc
        return False


def frame_request_id(buf: bytes) -> int:
    """Peek the request id of an encoded transport frame (O(1), no decode).

    Raises :class:`~repro.core.errors.WireFormatError` when ``buf`` is not a
    transport frame of this wire version (too short, wrong magic/version, or
    a standalone payload).
    """
    buf = bytes(buf)
    if len(buf) < _REQUEST_ID_END:
        raise WireFormatError("buffer too short to hold a frame request id")
    _check_header(_Decoder(buf), _KIND_FRAME)
    return int.from_bytes(buf[_REQUEST_ID_OFFSET:_REQUEST_ID_END], "little")


def stamp_request_id(buf: bytes, request_id: int) -> bytes:
    """Return ``buf`` with its request-id section set to ``request_id``.

    The id lives at a fixed offset in the frame header, so stamping never
    re-encodes the frame; transports use this to assign connection-unique
    ids to outgoing frames and to echo them onto replies.
    """
    if not 0 <= request_id <= _REQUEST_ID_MAX:
        raise WireFormatError(f"request id {request_id} does not fit 64 bits")
    buf = bytes(buf)
    if len(buf) < _REQUEST_ID_END:
        raise WireFormatError("buffer too short to hold a frame request id")
    _check_header(_Decoder(buf), _KIND_FRAME)
    return (
        buf[:_REQUEST_ID_OFFSET]
        + request_id.to_bytes(8, "little")
        + buf[_REQUEST_ID_END:]
    )


def wire_word_count(payload: Any) -> int:
    """Words of the payload's wire data section (8 bytes each).

    Identical to :func:`~repro.distributed.message.payload_word_count` on
    that function's whole domain -- the codec encodes exactly one 8-byte
    word per accounted word.  For a :class:`Message` the count covers the
    carried payload (the ``words`` field is accounting metadata and travels
    as framing).
    """
    if isinstance(payload, Message):
        return payload_word_count(payload.payload)
    return payload_word_count(payload)


def payload_data_bytes(payload: Any) -> int:
    """Bytes of the payload's wire data section (``8 * wire_word_count``)."""
    enc = _Encoder()
    _encode_node(enc, payload)
    return enc.data_bytes


# --------------------------------------------------------------------------- #
# transport frames
# --------------------------------------------------------------------------- #
#: A tagged payload section: the tag attributes the section's data bytes to
#: the network accounting ledger; ``None`` marks control payloads (request
#: parameters the simulation never charges).
Entry = Tuple[Optional[str], Any]


@dataclass
class DecodedFrame:
    """One decoded transport frame plus its byte-accounting breakdown."""

    op: str
    meta: dict
    entries: List[Entry]
    #: ``(tag, data_bytes)`` per *tagged* entry, in entry order.
    data_sections: List[Tuple[str, int]] = field(default_factory=list)
    total_bytes: int = 0
    #: The frame's request id (0 when unassigned); replies echo the request's.
    request_id: int = 0

    @property
    def data_bytes(self) -> int:
        """Bytes of the tagged data plane."""
        return sum(nbytes for _, nbytes in self.data_sections)

    @property
    def overhead_bytes(self) -> int:
        """Framing + control bytes (everything that is not tagged data)."""
        return self.total_bytes - self.data_bytes

    def entry(self, index: int = 0) -> Any:
        """Return the payload of entry ``index``."""
        return self.entries[index][1]


def encode_frame_with_stats(
    op: str,
    meta: Optional[Mapping] = None,
    entries: Sequence[Entry] = (),
    *,
    request_id: int = 0,
) -> Tuple[bytes, List[Tuple[str, int]], int]:
    """Encode one frame and return ``(bytes, data_sections, overhead_bytes)``.

    ``data_sections`` attributes each tagged entry's data-plane bytes to its
    tag (what a byte ledger records); ``overhead_bytes`` is everything else
    in the frame -- op, metadata, tags, untagged control payloads, framing.
    The ``request_id`` lands in the fixed framing section after the header
    (see :func:`stamp_request_id`) and is never part of the word accounting.
    """
    if not 0 <= request_id <= _REQUEST_ID_MAX:
        raise WireFormatError(f"request id {request_id} does not fit 64 bits")
    enc = _Encoder()
    enc.frame(_header(_KIND_FRAME))
    enc.frame(request_id.to_bytes(8, "little"))
    _encode_str(enc, op)
    _encode_node(enc, dict(meta or {}))
    entry_list = list(entries)
    enc.frame(struct.pack("<I", len(entry_list)))
    sections: List[Tuple[str, int]] = []
    for tag, payload in entry_list:
        if tag is None:
            enc.frame(struct.pack("<B", 0))
        else:
            enc.frame(struct.pack("<B", 1))
            _encode_str(enc, tag)
        before = enc.data_bytes
        _encode_node(enc, payload)
        if tag is not None:
            sections.append((tag, enc.data_bytes - before))
    data_bytes = sum(nbytes for _, nbytes in sections)
    return bytes(enc.buf), sections, len(enc.buf) - data_bytes


def encode_frame(
    op: str,
    meta: Optional[Mapping] = None,
    entries: Sequence[Entry] = (),
    *,
    request_id: int = 0,
) -> bytes:
    """Encode one transport frame (op + metadata + tagged payload entries)."""
    return encode_frame_with_stats(op, meta, entries, request_id=request_id)[0]


def decode_frame(buf: bytes) -> DecodedFrame:
    """Decode one transport frame, attributing data bytes per tagged entry.

    Corrupt input always raises :class:`~repro.core.errors.WireFormatError`
    (same hardening contract as :func:`from_bytes`).
    """
    with _typed_decode_errors():
        dec = _Decoder(bytes(buf))
        _check_header(dec, _KIND_FRAME)
        request_id = int.from_bytes(dec.take(8), "little")
        op = _decode_node(dec)
        meta = _decode_node(dec)
        if not isinstance(op, str) or not isinstance(meta, dict):
            raise WireFormatError("malformed frame header")
        (count,) = dec.unpack("<I")
        entries: List[Entry] = []
        sections: List[Tuple[str, int]] = []
        for _ in range(count):
            (has_tag,) = dec.unpack("<B")
            tag = _decode_node(dec) if has_tag else None
            if has_tag and not isinstance(tag, str):
                raise WireFormatError("entry tags must be strings")
            before = dec.data_bytes
            payload = _decode_node(dec)
            if tag is not None:
                sections.append((tag, dec.data_bytes - before))
            entries.append((tag, payload))
        if dec.pos != len(dec.buf):
            raise WireFormatError(
                f"trailing bytes after frame ({len(dec.buf) - dec.pos} unread)"
            )
        return DecodedFrame(
            op=op,
            meta=meta,
            entries=entries,
            data_sections=sections,
            total_bytes=len(dec.buf),
            request_id=request_id,
        )


def frame_stats(buf: bytes) -> DecodedFrame:
    """Decode ``buf`` purely for accounting (alias of :func:`decode_frame`)."""
    return decode_frame(buf)
