"""``python -m repro``: the experiment command-line interface."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
