"""Row samplers: the pluggable component of Algorithm 1.

Algorithm 1 needs a distributed sampler that (i) draws rows of the implicit
global matrix with probability at least ``c |A_i|_2^2 / ||A||_F^2`` and (ii)
reports a ``(1 +/- gamma)`` approximation of the actual sampling
probability.  Different applications of the paper differ *only* in the
sampler:

* Gaussian random Fourier features have (nearly) equal row norms, so
  :class:`UniformRowSampler` suffices and costs no communication
  (Section VI-A);
* softmax / generalized mean pooling and M-estimator ψ-functions use the
  generalized Z-sampler machinery through
  :class:`GeneralizedZRowSampler` (Sections VI-B and VI-C);
* :class:`ExactNormSampler` is an oracle baseline that centralises the data
  to sample from the exact squared-norm distribution -- used by tests and
  ablations, never by a real protocol.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.distributed.cluster import LocalCluster
from repro.functions.base import EntrywiseFunction
from repro.functions.softmax import GeneralizedMeanFunction
from repro.sketch.z_sampler import ZSampler, ZSamplerConfig
from repro.utils.linalg import row_norms_squared
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class RowSample:
    """The output of one sampling round.

    Attributes
    ----------
    row_indices:
        Length-``r`` array of sampled row indices (with replacement).
    probabilities:
        ``Qhat`` for each draw: the (approximately) reported probability
        that a single draw of the sampler returns that row.
    global_rows:
        Optional ``r x d`` array of the sampled *global* rows
        (``f`` already applied).  Samplers that had to collect the rows to
        compute ``Qhat`` fill this in so Algorithm 1 does not pay for the
        rows twice.
    words_used:
        Communication charged while sampling.
    metadata:
        Sampler-specific diagnostics (e.g. the Z-estimate).
    """

    row_indices: np.ndarray
    probabilities: np.ndarray
    global_rows: Optional[np.ndarray] = None
    words_used: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.row_indices = np.asarray(self.row_indices, dtype=np.int64)
        self.probabilities = np.asarray(self.probabilities, dtype=float)
        if self.row_indices.shape != self.probabilities.shape:
            raise ValueError("row_indices and probabilities must have the same length")
        if np.any(self.probabilities <= 0):
            raise ValueError("all reported probabilities must be strictly positive")
        if self.global_rows is not None:
            self.global_rows = np.asarray(self.global_rows, dtype=float)
            if self.global_rows.shape[0] != self.row_indices.shape[0]:
                raise ValueError("global_rows must have one row per sampled index")

    @property
    def num_samples(self) -> int:
        """Number of draws ``r``."""
        return int(self.row_indices.size)


class RowSampler(abc.ABC):
    """Interface of the distributed row sampler used by Algorithm 1."""

    #: Human-readable name used in experiment reports.
    name: str = "row_sampler"
    #: True for evaluation-only samplers that centralise the data.
    is_oracle: bool = False

    @abc.abstractmethod
    def sample_rows(
        self, cluster: LocalCluster, count: int, seed: RandomState = None
    ) -> RowSample:
        """Draw ``count`` rows (with replacement) from ``cluster``'s global matrix."""


class UniformRowSampler(RowSampler):
    """Sample rows uniformly at random (``Qhat_i = 1/n``), with zero communication.

    Valid whenever the global rows have (nearly) equal squared norms, which
    is the case for Gaussian random Fourier features where every row norm
    concentrates around ``d`` (Section VI-A).
    """

    name = "uniform"

    def sample_rows(
        self, cluster: LocalCluster, count: int, seed: RandomState = None
    ) -> RowSample:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        n = cluster.num_rows
        indices = rng.integers(0, n, size=count)
        probabilities = np.full(count, 1.0 / n)
        return RowSample(indices, probabilities, words_used=0)


class ExactNormSampler(RowSampler):
    """Oracle sampler from the exact distribution ``|A_i|_2^2 / ||A||_F^2``.

    Centralises the global matrix (evaluation only, no communication is
    charged); serves as the "perfect sampler" upper baseline in ablations
    and as ground truth in tests of Algorithm 1's tolerance to approximate
    probabilities.

    Parameters
    ----------
    probability_noise:
        Optional multiplicative distortion ``gamma``: reported probabilities
        are ``Q_i * (1 + u)`` with ``u`` uniform in ``[-gamma, gamma]``,
        exercising the approximate-probability analysis of Lemma 3.
    """

    name = "exact_norm"
    is_oracle = True

    def __init__(self, probability_noise: float = 0.0) -> None:
        if probability_noise < 0 or probability_noise >= 1:
            raise ValueError(
                f"probability_noise must be in [0, 1), got {probability_noise}"
            )
        self.probability_noise = float(probability_noise)

    def sample_rows(
        self, cluster: LocalCluster, count: int, seed: RandomState = None
    ) -> RowSample:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        global_matrix = cluster.materialize_global()
        norms = row_norms_squared(global_matrix)
        total = norms.sum()
        if total <= 0:
            raise ValueError("the global matrix is identically zero; cannot sample by norm")
        probabilities = norms / total
        indices = rng.choice(global_matrix.shape[0], size=count, p=probabilities)
        reported = probabilities[indices]
        if self.probability_noise > 0:
            distortion = 1.0 + rng.uniform(
                -self.probability_noise, self.probability_noise, size=count
            )
            reported = reported * distortion
        return RowSample(
            indices,
            reported,
            global_rows=global_matrix[indices],
            words_used=0,
            metadata={"exact_distribution": probabilities},
        )


class GeneralizedZRowSampler(RowSampler):
    """Row sampling through the generalized (distributed) Z-sampler.

    The row-sampling task is reduced to entry sampling (Section V): entries
    of the flattened summed matrix are sampled with probability proportional
    to ``z(sum_t A^t_{ij})`` where ``z`` is the entrywise function's sampling
    weight (``~ f^2``); a sampled entry selects its whole row.  The reported
    row probability is ``sum_j z(a_{ij}) / Zhat``, computed exactly by the
    Central Processor from the collected summed row and the Z-estimator's
    ``Zhat``.

    The underlying sketch stack runs on the fused (vectorized) engine by
    default; because batching is a local-compute optimization, the words
    charged per network tag -- including ``sampler:gather_rows`` and the
    estimator's per-bucket sketch traffic -- are bit-for-bit identical to
    the naive reference engine (asserted by
    ``tests/test_vectorized_equivalence.py``).

    Parameters
    ----------
    function:
        The entrywise function ``f`` (supplies the weight ``z``).  When
        omitted, the cluster's own function is used if it is an
        :class:`~repro.functions.base.EntrywiseFunction`.
    config:
        Configuration of the underlying :class:`~repro.sketch.z_sampler.ZSampler`.
    backend:
        Execution backend running the Z-sampling phase: a registered name
        (``local``/``mp``/``loopback``/``tcp``), an
        :class:`~repro.backend.base.ExecutionBackend` instance, or ``None``
        for the in-process default.  Draws and per-tag words are
        bit-identical across backends (the backend-matrix suite asserts
        it); in-process backends charge the cluster's own network directly,
        transport backends run on their byte-audited twin whose per-tag
        words are bridged back into the cluster's ledger afterwards.
    """

    name = "generalized_z"

    def __init__(
        self,
        function: Optional[EntrywiseFunction] = None,
        config: Optional[ZSamplerConfig] = None,
        *,
        backend=None,
    ) -> None:
        self._function = function
        self._config = config or ZSamplerConfig()
        self._backend = backend

    def set_backend(self, backend) -> "GeneralizedZRowSampler":
        """Select the execution backend by name or instance (returns ``self``)."""
        self._backend = backend
        return self

    def _resolve_function(self, cluster: LocalCluster) -> EntrywiseFunction:
        if self._function is not None:
            return self._function
        if isinstance(cluster.function, EntrywiseFunction):
            return cluster.function
        raise TypeError(
            "GeneralizedZRowSampler needs an EntrywiseFunction; pass one "
            "explicitly or attach one to the cluster"
        )

    def _entry_draws(self, cluster: LocalCluster, function, count: int, rng):
        """Run the Z-sampling phase on the selected execution backend.

        In-process backends charge ``cluster.network`` directly; transport
        backends run on their own byte-audited
        :class:`~repro.distributed.network.TransportNetwork` (verified
        before returning) and their per-tag words are then bridged into the
        cluster's ledger, so the communication-ratio bookkeeping is
        identical for every backend.
        """
        from repro.backend import resolve_backend

        backend = resolve_backend(self._backend)
        components = [server.flat_nonzero() for server in cluster.servers]
        n, d = cluster.shape
        if backend.reuses_network:
            session = backend.session(components, n * d, network=cluster.network)
        else:
            session = backend.session(components, n * d)
        with session:
            draws = session.sample(
                function.sampling_weight, count, config=self._config, seed=rng
            )
            if not backend.reuses_network:
                session.verify_accounting()
                for tag, words in session.network.snapshot().words_by_tag.items():
                    cluster.network.charge(1, 0, words, tag=tag)
        return draws

    def sample_rows(
        self, cluster: LocalCluster, count: int, seed: RandomState = None
    ) -> RowSample:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rng = ensure_rng(seed)
        function = self._resolve_function(cluster)
        network = cluster.network
        words_before = network.total_words

        draws = self._entry_draws(cluster, function, count, rng)

        d = cluster.num_columns
        row_indices = draws.indices // d

        # Collect the summed rows once (needed both for Qhat and for B).
        unique_rows, inverse = np.unique(row_indices, return_inverse=True)
        summed_rows = cluster.aggregate_rows(
            unique_rows, tag="sampler:gather_rows", apply_function=False
        )
        weights = np.asarray(function.sampling_weight(summed_rows), dtype=float)
        row_weight = weights.sum(axis=1)
        z_total = draws.estimate.z_total
        if z_total <= 0:
            raise RuntimeError("Z-estimator reported a non-positive Zhat")
        row_probabilities = np.clip(row_weight / z_total, 1e-300, None)

        global_rows = np.asarray(function(summed_rows), dtype=float)
        return RowSample(
            row_indices=row_indices,
            probabilities=row_probabilities[inverse],
            global_rows=global_rows[inverse],
            words_used=network.total_words - words_before,
            metadata={
                "z_estimate": draws.estimate,
                "entry_indices": draws.indices,
                "failures": draws.failures,
            },
        )


def softmax_row_sampler(
    p: float, config: Optional[ZSamplerConfig] = None
) -> GeneralizedZRowSampler:
    """Convenience factory: the sampler for softmax / ``GM_p`` aggregation.

    Servers are expected to hold the locally transformed matrices
    ``(1/s) |M^t|^p`` (see
    :meth:`repro.functions.softmax.GeneralizedMeanFunction.build_cluster`);
    the sampler then performs ``l_{2/p}`` sampling on their sum, which is the
    paper's application of [14], [15].
    """
    return GeneralizedZRowSampler(GeneralizedMeanFunction(p), config)
