"""Result object returned by :class:`~repro.core.distributed_pca.DistributedPCA`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.errors import approximation_report
from repro.utils.linalg import is_projection_matrix, projection_rank


@dataclass
class PCAResult:
    """The rank-``k`` projection computed by the distributed protocol, plus its bill.

    Attributes
    ----------
    projection:
        The ``d x d`` projection matrix ``P = V V^T``.
    basis:
        The ``d x k`` orthonormal basis ``V`` of the row space of ``P``.
    k:
        Target rank.
    num_samples:
        Number of rows sampled per repetition (``r``).
    row_indices:
        The sampled row indices of the best repetition.
    communication_words:
        Total words charged to the network during the protocol run
        (sampling + row collection over all repetitions).
    input_words:
        Sum of the local data sizes (the ratio denominator).
    sampler_name:
        Name of the row sampler used.
    repetitions:
        Number of independent repetitions run (the best by ``||BP||_F^2`` kept).
    score:
        ``||B P||_F^2`` of the kept repetition.
    metadata:
        Additional diagnostics (per-repetition scores, sampler metadata, ...).
    """

    projection: np.ndarray
    basis: np.ndarray
    k: int
    num_samples: int
    row_indices: np.ndarray
    communication_words: int
    input_words: int
    sampler_name: str = ""
    repetitions: int = 1
    score: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def communication_ratio(self) -> float:
        """Communication divided by the total local data size."""
        if self.input_words <= 0:
            return float("nan")
        return self.communication_words / self.input_words

    @property
    def rank(self) -> int:
        """Numerical rank of the projection (should equal ``k``)."""
        return projection_rank(self.projection)

    def is_valid_projection(self, atol: float = 1e-6) -> bool:
        """Check that the output is a genuine projection matrix of rank at most ``k``."""
        return bool(
            is_projection_matrix(self.projection, atol=atol) and self.rank <= self.k
        )

    def evaluate(self, global_matrix: np.ndarray, k: Optional[int] = None) -> Dict[str, float]:
        """Return the additive/relative error report against ``global_matrix``.

        The global matrix is an evaluation-only object (tests/experiments
        obtain it via ``cluster.materialize_global()``).
        """
        return approximation_report(global_matrix, self.projection, k if k is not None else self.k)

    def project(self, matrix: np.ndarray) -> np.ndarray:
        """Return ``matrix @ P``, the rows projected onto the learned subspace."""
        arr = np.asarray(matrix, dtype=float)
        return arr @ self.projection

    def reduce(self, matrix: np.ndarray) -> np.ndarray:
        """Return the ``k``-dimensional coordinates ``matrix @ V`` (feature reduction)."""
        arr = np.asarray(matrix, dtype=float)
        return arr @ self.basis
