"""The Frieze-Kannan-Vempala sampling step (Section III of the paper).

Given rows sampled with probability at least ``c |A_i|_2^2 / ||A||_F^2`` and
(approximately reported) probabilities ``Qhat``, form

.. math::

    B_{i'} = A_{j_{i'}} / \\sqrt{r \\; \\hat Q_{j_{i'}}}

so that ``E[B^T B] ~= A^T A``; the projection onto the top-``k`` right
singular vectors of ``B`` is then an additive-error rank-``k`` approximation
of ``A`` (Lemmas 1-3).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.utils.linalg import scaled_row_sample_matrix, svd_rank_k_projection
from repro.utils.validation import check_matrix, check_positive, check_rank


def theoretical_sample_count(k: int, epsilon: float, c: float = 1.0) -> int:
    """The paper's worst-case sample count ``r = ceil(1440 k^2 / (eps^2 c))`` (Lemma 3)."""
    k = check_rank(k, None, "k")
    epsilon = check_positive(epsilon, "epsilon")
    c = check_positive(c, "c")
    return int(math.ceil(1440.0 * k * k / (epsilon * epsilon * c)))


def practical_sample_count(k: int, epsilon: float) -> int:
    """A practically sized sample count ``r = ceil(k^2 / eps^2)``.

    The constant 1440 in Lemma 3 comes from Markov/union bounds; the
    experiments of Section VIII (and ours) show ``k^2/eps^2`` rows already
    achieve additive error well below ``eps`` -- indeed the paper predicts
    additive error ``k^2 / r``.
    """
    k = check_rank(k, None, "k")
    epsilon = check_positive(epsilon, "epsilon")
    return max(k + 1, int(math.ceil(k * k / (epsilon * epsilon))))


def fkv_projection(
    sampled_rows: np.ndarray,
    probabilities: np.ndarray,
    k: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the rank-``k`` projection from sampled rows and their probabilities.

    Parameters
    ----------
    sampled_rows:
        ``r x d`` matrix whose ``i``-th row is the sampled global row
        ``A_{j_i}`` (already run through ``f``).
    probabilities:
        Length-``r`` vector of the reported probabilities ``Qhat_{j_i}``.
    k:
        Target rank.

    Returns
    -------
    (basis, projection, b_matrix)
        ``basis`` is ``d x k`` orthonormal, ``projection = basis @ basis.T``,
        and ``b_matrix`` is the rescaled sample matrix ``B``.
    """
    rows = check_matrix(sampled_rows, "sampled_rows")
    k = check_rank(k, rows.shape[1], "k")
    b_matrix = scaled_row_sample_matrix(rows, probabilities)
    basis, projection = svd_rank_k_projection(b_matrix, k)
    return basis, projection, b_matrix


def gram_estimate(sampled_rows: np.ndarray, probabilities: np.ndarray) -> np.ndarray:
    """Return ``B^T B``, the unbiased estimate of ``A^T A`` built from the sample."""
    rows = check_matrix(sampled_rows, "sampled_rows")
    b_matrix = scaled_row_sample_matrix(rows, probabilities)
    return b_matrix.T @ b_matrix
