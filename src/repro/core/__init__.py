"""Core framework: distributed additive-error low-rank approximation (Algorithm 1).

The pipeline is the paper's Section III-IV:

1. a :class:`~repro.core.samplers.RowSampler` draws ``r = Theta(k^2/eps^2)``
   rows of the implicit global matrix with probability (approximately)
   proportional to their squared norm, reporting approximate probabilities
   ``Qhat``;
2. the sampled rows are collected at the Central Processor and rescaled into
   the matrix ``B`` with ``B_i = A_{j_i} / sqrt(r Qhat_{j_i})``
   (:mod:`repro.core.fkv`);
3. the top-``k`` right singular vectors of ``B`` give the projection
   ``P = V V^T``, which is an additive-error rank-``k`` approximation of the
   global matrix (Lemmas 1-3, Theorem 1).

:class:`~repro.core.distributed_pca.DistributedPCA` orchestrates the three
steps against a :class:`~repro.distributed.cluster.LocalCluster` and returns
a :class:`~repro.core.result.PCAResult` carrying the projection and the
exact communication bill.
"""

from repro.core.distributed_pca import DistributedPCA
from repro.core.errors import (
    DimensionMismatchError,
    ReproError,
    additive_error,
    approximation_report,
    predicted_additive_error,
    relative_error,
)
from repro.core.fkv import (
    fkv_projection,
    practical_sample_count,
    theoretical_sample_count,
)
from repro.core.result import PCAResult
from repro.core.samplers import (
    ExactNormSampler,
    GeneralizedZRowSampler,
    RowSample,
    RowSampler,
    UniformRowSampler,
    softmax_row_sampler,
)

__all__ = [
    "ReproError",
    "DimensionMismatchError",
    "DistributedPCA",
    "PCAResult",
    "RowSampler",
    "RowSample",
    "UniformRowSampler",
    "ExactNormSampler",
    "GeneralizedZRowSampler",
    "softmax_row_sampler",
    "fkv_projection",
    "theoretical_sample_count",
    "practical_sample_count",
    "additive_error",
    "relative_error",
    "approximation_report",
    "predicted_additive_error",
]
