"""Approximation-error metrics and the library's exception types.

The paper reports two quantities for a computed rank-``k`` projection ``P``:

* the **additive error** ``(||A - AP||_F^2 - ||A - [A]_k||_F^2) / ||A||_F^2``
  (Figure 1), which Theorem 1 bounds by ``O(eps)``;
* the **relative error** ``||A - AP||_F^2 / ||A - [A]_k||_F^2`` (Figure 2).

The theoretical prediction overlaid on Figure 1 is ``k^2 / r`` where ``r`` is
the number of sampled rows.

The exception hierarchy lives here too: distributed containers validate their
inputs eagerly and raise :class:`DimensionMismatchError` with a message
naming the offending server, instead of letting a later numpy broadcast or
fancy-index blow up far from the construction site.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.utils.linalg import (
    best_rank_k_error,
    frobenius_norm_squared,
)
from repro.utils.validation import check_matrix, check_rank


class ReproError(Exception):
    """Base class of every exception raised deliberately by this library."""


class SketchCompatibilityError(ReproError, ValueError):
    """Two sketch states cannot be merged.

    Merging CountSketch (or batched / heavy-hitter) state is only linear --
    tables add -- when both sides were built from the *same* hash
    coefficients over the same ``(depth, width, domain)`` geometry.  Raised
    by the merge layer of :mod:`repro.runtime.state` when the coefficients
    or shapes disagree, instead of silently adding incompatible tables.
    """


class WireFormatError(ReproError, ValueError):
    """A byte buffer is not a valid wire-format frame.

    Raised by :mod:`repro.runtime.wire` on bad magic, an unsupported wire
    version, truncated buffers, unknown type codes, or payloads outside the
    codec's domain (e.g. non-ASCII strings, integers beyond 64 bits).
    """


class WireAccountingError(ReproError, AssertionError):
    """Real wire traffic disagrees with the simulated word accounting.

    Raised by
    :meth:`repro.distributed.network.TransportNetwork.verify_wire_accounting`
    when, for any tag, the bytes actually moved through the transport's
    data plane differ from ``BYTES_PER_WORD`` times the words charged to the
    accounting network -- the invariant that keeps simulated and real runs
    mutually auditable.
    """


class AdmissionError(ReproError, PermissionError):
    """A tenant asked for more serving capacity than its quota allows.

    Raised by the admission-control layer -- worker-side when a frame would
    open a session past the tenant's ``max_sessions_per_tenant`` /
    ``max_tenants`` quota (the typed error frame travels back and is
    re-raised typed by the coordinator), and coordinator-side by
    :class:`repro.backend.serving.ServingPool` before a session is even
    opened.  A rejection is a clean refusal: nothing was cached, no words
    were charged, and neighbouring tenants' sessions are untouched.
    Subclasses ``PermissionError`` so generic quota handling keeps working;
    maps to CLI exit code 9.
    """


class WorkerProtocolError(ReproError, RuntimeError):
    """A worker answered a frame with an error or an unexpected shape.

    Raised by the coordinator-side services of :mod:`repro.runtime.service`
    when a worker returns an ``error`` frame, a malformed reply (wrong table
    shape, unmatched request id), or when the transport loses the connection
    mid-reply.  Also raised worker-side for unknown operations, travelling
    back to the coordinator as a typed ``error`` frame.
    """


class WorkerTimeoutError(ReproError, TimeoutError):
    """A worker did not answer a request within its per-request deadline.

    Raised by :class:`repro.runtime.transport.TcpTransport` when a pipelined
    request's reply does not arrive in time.  The connection is poisoned
    (closed) when this is raised: a late reply must never be delivered to the
    next request.  Every protocol operation is idempotent (workers cache by
    token, sketching and collecting are pure reads), so callers may retry on
    a fresh connection -- :class:`~repro.runtime.transport.TcpTransport`
    automates that for *connection* failures via its ``retries`` parameter,
    while timeouts always surface typed so the caller decides.
    """


class WorkerLostError(ReproError, ConnectionError):
    """A worker is unreachable and could not be brought back.

    Raised by :class:`repro.runtime.supervisor.WorkerSupervisor` when a
    worker stops answering health probes and either no respawner is
    configured or the per-session restart budget is exhausted.  Subclasses
    ``ConnectionError`` so callers treating connection loss generically keep
    working; sessions opened with ``stale_ok`` may instead answer
    ``estimate`` from the last checkpoint (flagged stale) when this is
    raised.  Maps to CLI exit code 8.
    """


class RecoveryError(WorkerLostError):
    """Recovering a lost worker failed partway through.

    The supervisor found a dead worker and tried to respawn/reconnect,
    restore its checkpoint and replay the journaled frames, but one of those
    steps failed (or a wave kept failing past the retry budget).  Subclasses
    :class:`WorkerLostError` -- the worker is still lost -- so both map to
    the same typed CLI exit code.
    """


class DimensionMismatchError(ReproError, ValueError, IndexError):
    """Servers disagree about the shape/dimension of the shared object.

    Raised when a :class:`~repro.distributed.cluster.LocalCluster`'s local
    matrices have unequal shapes, when a
    :class:`~repro.distributed.vector.DistributedVector`'s components do not
    line up with the network's server count or hold coordinates outside the
    declared dimension, and by per-server mask/payload validation.  Subclasses
    both ``ValueError`` and ``IndexError`` so pre-existing callers catching
    either keep working.
    """


def residual_norm_squared(matrix: np.ndarray, projection: np.ndarray) -> float:
    """Return ``||A - A P||_F^2`` for a projection matrix ``P``."""
    a = check_matrix(matrix, "matrix")
    p = check_matrix(projection, "projection")
    if p.shape[0] != p.shape[1] or p.shape[0] != a.shape[1]:
        raise ValueError(
            f"projection must be a {a.shape[1]} x {a.shape[1]} matrix, got {p.shape}"
        )
    residual = a - a @ p
    return frobenius_norm_squared(residual)


def additive_error(matrix: np.ndarray, projection: np.ndarray, k: int) -> float:
    """Return ``|  ||A-AP||_F^2 - ||A-[A]_k||_F^2  | / ||A||_F^2`` (Figure 1's metric)."""
    a = check_matrix(matrix, "matrix")
    k = check_rank(k, min(a.shape), "k")
    achieved = residual_norm_squared(a, projection)
    optimal = best_rank_k_error(a, k)
    denom = frobenius_norm_squared(a)
    if denom <= 0:
        raise ValueError("matrix must be nonzero to measure additive error")
    return abs(achieved - optimal) / denom


def relative_error(matrix: np.ndarray, projection: np.ndarray, k: int) -> float:
    """Return ``||A-AP||_F^2 / ||A-[A]_k||_F^2`` (Figure 2's metric).

    When the best rank-``k`` error is (numerically) zero the ratio is
    reported as ``inf`` unless the achieved error is also zero, in which
    case it is ``1.0``.
    """
    a = check_matrix(matrix, "matrix")
    k = check_rank(k, min(a.shape), "k")
    achieved = residual_norm_squared(a, projection)
    optimal = best_rank_k_error(a, k)
    if optimal <= 1e-12 * frobenius_norm_squared(a):
        return 1.0 if achieved <= 1e-12 * frobenius_norm_squared(a) else float("inf")
    return achieved / optimal


def predicted_additive_error(k: int, num_samples: int) -> float:
    """The paper's theoretical prediction ``k^2 / r`` for the additive error."""
    k = check_rank(k, None, "k")
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    return float(k * k) / float(num_samples)


def approximation_report(
    matrix: np.ndarray, projection: np.ndarray, k: int
) -> Dict[str, float]:
    """Return all error metrics for one (matrix, projection, k) triple."""
    a = check_matrix(matrix, "matrix")
    k = check_rank(k, min(a.shape), "k")
    achieved = residual_norm_squared(a, projection)
    optimal = best_rank_k_error(a, k)
    total = frobenius_norm_squared(a)
    additive = abs(achieved - optimal) / total if total > 0 else float("nan")
    if optimal <= 1e-12 * total:
        relative = 1.0 if achieved <= 1e-12 * total else float("inf")
    else:
        relative = achieved / optimal
    return {
        "residual_norm_squared": achieved,
        "best_rank_k_norm_squared": optimal,
        "frobenius_norm_squared": total,
        "additive_error": additive,
        "relative_error": relative,
        "captured_fraction": 1.0 - achieved / total if total > 0 else float("nan"),
    }
