"""Algorithm 1: the distributed additive-error PCA framework.

``DistributedPCA`` wires a :class:`~repro.core.samplers.RowSampler` into the
Frieze-Kannan-Vempala estimator:

1. the sampler draws ``r`` rows with (approximately reported)
   probabilities ``Qhat``;
2. every server ships its local copy of the sampled rows to the Central
   Processor (unless the sampler already collected them), which sums them
   and applies ``f``;
3. the CP rescales the rows into ``B`` (``B_{i'} = A_{j_{i'}} /
   sqrt(r Qhat_{j_{i'}})``) and outputs the projection onto the top-``k``
   right singular vectors of ``B``.

Per Theorem 1, repeating the procedure and keeping the run with maximum
``||B P||_F^2`` boosts the constant success probability to ``1 - delta``
with ``O(log 1/delta)`` repetitions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.fkv import fkv_projection, practical_sample_count
from repro.core.result import PCAResult
from repro.core.samplers import RowSample, RowSampler, UniformRowSampler
from repro.distributed.cluster import LocalCluster
from repro.utils.linalg import frobenius_norm_squared
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.validation import check_positive, check_rank


class DistributedPCA:
    """Compute an additive-error rank-``k`` projection of the implicit global matrix.

    Parameters
    ----------
    k:
        Target rank of the projection.
    num_samples:
        Number ``r`` of rows sampled per repetition.  When omitted it is
        derived from ``epsilon`` as ``ceil(k^2 / epsilon^2)``
        (:func:`~repro.core.fkv.practical_sample_count`).
    epsilon:
        Target additive error (only used to derive ``num_samples``).
    sampler:
        The row sampler; defaults to :class:`~repro.core.samplers.UniformRowSampler`.
    repetitions:
        Independent repetitions; the projection maximising ``||BP||_F^2`` is
        returned (Theorem 1's success-probability boosting).
    seed:
        Randomness for sampling.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.distributed import LocalCluster, arbitrary_partition
    >>> from repro.core import DistributedPCA
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(200, 20)) @ rng.normal(size=(20, 30))
    >>> cluster = LocalCluster(arbitrary_partition(data, 4, seed=1))
    >>> result = DistributedPCA(k=5, num_samples=120, seed=2).fit(cluster)
    >>> result.projection.shape
    (30, 30)
    """

    def __init__(
        self,
        k: int,
        *,
        num_samples: Optional[int] = None,
        epsilon: Optional[float] = None,
        sampler: Optional[RowSampler] = None,
        repetitions: int = 1,
        seed: RandomState = None,
    ) -> None:
        self.k = check_rank(k, None, "k")
        if num_samples is None:
            if epsilon is None:
                raise ValueError("provide either num_samples or epsilon")
            epsilon = check_positive(epsilon, "epsilon")
            num_samples = practical_sample_count(self.k, epsilon)
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        self.num_samples = int(num_samples)
        self.epsilon = epsilon
        self.sampler = sampler if sampler is not None else UniformRowSampler()
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self.repetitions = int(repetitions)
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    # the protocol
    # ------------------------------------------------------------------ #
    def _collect_rows(self, cluster: LocalCluster, sample: RowSample) -> np.ndarray:
        """Return the sampled global rows, collecting them from the servers if needed."""
        if sample.global_rows is not None:
            return sample.global_rows
        unique_rows, inverse = np.unique(sample.row_indices, return_inverse=True)
        collected = cluster.aggregate_rows(unique_rows, tag="pca:gather_rows")
        return collected[inverse]

    def fit(self, cluster: LocalCluster) -> PCAResult:
        """Run the protocol against ``cluster`` and return the best projection found.

        The returned :class:`~repro.core.result.PCAResult` carries the exact
        number of words charged to the cluster's network by this call
        (sampling plus row collection, over all repetitions).
        """
        if self.k > cluster.num_columns:
            raise ValueError(
                f"k={self.k} exceeds the number of columns {cluster.num_columns}"
            )
        network = cluster.network
        words_before = network.total_words
        repetition_rngs = spawn_rngs(self._rng, self.repetitions)

        best: Optional[dict] = None
        scores = []
        for repetition in range(self.repetitions):
            sample = self.sampler.sample_rows(
                cluster, self.num_samples, seed=repetition_rngs[repetition]
            )
            rows = self._collect_rows(cluster, sample)
            basis, projection, b_matrix = fkv_projection(
                rows, sample.probabilities, self.k
            )
            score = frobenius_norm_squared(b_matrix @ projection)
            scores.append(score)
            if best is None or score > best["score"]:
                best = {
                    "score": score,
                    "basis": basis,
                    "projection": projection,
                    "sample": sample,
                }

        assert best is not None  # repetitions >= 1
        total_words = network.total_words - words_before
        return PCAResult(
            projection=best["projection"],
            basis=best["basis"],
            k=self.k,
            num_samples=self.num_samples,
            row_indices=best["sample"].row_indices,
            communication_words=total_words,
            input_words=cluster.total_input_words(),
            sampler_name=self.sampler.name,
            repetitions=self.repetitions,
            score=best["score"],
            metadata={
                "repetition_scores": scores,
                "sampler_is_oracle": self.sampler.is_oracle,
                "sampler_metadata": best["sample"].metadata,
            },
        )
