"""Gaussian RBF kernel and its random Fourier feature (RFF) expansion.

Section VI-A of the paper: the Gaussian kernel
``K(x, y) = exp(-|x - y|^2 / 2)`` admits the Rahimi-Recht random feature
approximation ``phi(x) ~ sqrt(2) cos(Z x + b)`` with ``Z`` Gaussian and ``b``
uniform on ``[0, 2*pi]``.  Every expanded row has squared norm concentrated
around the number of features, so uniform row sampling is a valid
``l_2^2``-sampler for the expanded matrix and the distributed PCA framework
applies with zero sampling communication.
"""

from repro.kernels.rbf import gaussian_kernel_matrix, gaussian_kernel_value
from repro.kernels.rff import (
    RandomFourierFeatures,
    distributed_rff_cluster,
    rff_row_norm_concentration,
)

__all__ = [
    "gaussian_kernel_value",
    "gaussian_kernel_matrix",
    "RandomFourierFeatures",
    "distributed_rff_cluster",
    "rff_row_norm_concentration",
]
