"""Exact Gaussian RBF kernel (the object the random features approximate)."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix, check_positive


def gaussian_kernel_value(x: np.ndarray, y: np.ndarray, bandwidth: float = 1.0) -> float:
    """Return ``K(x, y) = exp(-|x - y|_2^2 / (2 sigma^2))`` for two vectors."""
    bandwidth = check_positive(bandwidth, "bandwidth")
    diff = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
    return float(np.exp(-float(diff @ diff) / (2.0 * bandwidth * bandwidth)))


def gaussian_kernel_matrix(
    points: np.ndarray,
    other: np.ndarray | None = None,
    bandwidth: float = 1.0,
) -> np.ndarray:
    """Return the Gram matrix ``K[i, j] = K(points_i, other_j)``.

    With ``other`` omitted the kernel matrix of ``points`` against itself is
    returned.  Used by tests to check that inner products of random Fourier
    features approximate the exact kernel.
    """
    bandwidth = check_positive(bandwidth, "bandwidth")
    a = check_matrix(points, "points")
    b = a if other is None else check_matrix(other, "other")
    if a.shape[1] != b.shape[1]:
        raise ValueError("points and other must have the same dimensionality")
    sq_a = np.sum(a * a, axis=1)[:, None]
    sq_b = np.sum(b * b, axis=1)[None, :]
    sq_dist = np.maximum(sq_a + sq_b - 2.0 * a @ b.T, 0.0)
    return np.exp(-sq_dist / (2.0 * bandwidth * bandwidth))
