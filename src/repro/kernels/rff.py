"""Random Fourier features (Rahimi-Recht) and their distributed expansion.

In the distributed setting of Section VI-A every server holds a share
``M^t`` of the raw data matrix ``M = sum_t M^t``; the Central Processor
broadcasts the feature map parameters ``(Z, b)`` (or just a seed), and the
implicit global matrix is

.. math::

    A_{ij} = \\sqrt{2} \\cos\\bigl((M Z)_{ij} + b_j\\bigr).

Note the function applied to the summed local data is *not* entrywise in the
raw matrices -- it is entrywise in the summed *projected* matrices ``M^t Z``,
which every server can compute locally because ``Z`` is shared.  The helper
:func:`distributed_rff_cluster` performs exactly this local projection and
returns a cluster whose entrywise function is ``sqrt(2) cos(x + b_j)``
folded into the local matrices (the phase is absorbed by appending it as an
extra, known summand on the coordinator's share).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributed.cluster import LocalCluster
from repro.distributed.network import Network
from repro.functions.base import EntrywiseFunction
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix, check_positive, check_rank


class CosineFeatureFunction(EntrywiseFunction):
    """``f(x) = sqrt(2) cos(x)``: the entrywise map of the RFF expansion.

    The squared value oscillates in ``[0, 2]``; it does not satisfy property
    P (it is not monotone), which is exactly why the paper uses *uniform*
    row sampling for this application -- the expanded rows all have squared
    norm ``~ d`` so no data-dependent sampling is needed.
    """

    name = "sqrt2_cos"

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.sqrt(2.0) * np.cos(x)

    def describe(self) -> str:
        return "f(x) = sqrt(2) cos(x)"


class RandomFourierFeatures:
    """The Rahimi-Recht feature map ``phi(x) = sqrt(2) cos(Z^T x + b)``.

    Parameters
    ----------
    input_dim:
        Dimensionality ``m`` of the raw data points.
    num_features:
        Number of random features ``d`` (the paper uses ``d = Theta(log n)``
        for the PCA application).
    bandwidth:
        Gaussian kernel bandwidth ``sigma``; frequencies are drawn from
        ``N(0, 1/sigma^2)``.
    seed:
        Randomness for the frequencies and phases.
    """

    def __init__(
        self,
        input_dim: int,
        num_features: int,
        bandwidth: float = 1.0,
        seed: RandomState = None,
    ) -> None:
        self.input_dim = check_rank(input_dim, None, "input_dim")
        self.num_features = check_rank(num_features, None, "num_features")
        self.bandwidth = check_positive(bandwidth, "bandwidth")
        rng = ensure_rng(seed)
        self.frequencies = rng.normal(
            0.0, 1.0 / self.bandwidth, size=(self.input_dim, self.num_features)
        )
        self.phases = rng.uniform(0.0, 2.0 * np.pi, size=self.num_features)

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Return the feature expansion ``sqrt(2) cos(points @ Z + b)``."""
        arr = check_matrix(points, "points")
        if arr.shape[1] != self.input_dim:
            raise ValueError(
                f"points must have {self.input_dim} columns, got {arr.shape[1]}"
            )
        return np.sqrt(2.0) * np.cos(arr @ self.frequencies + self.phases)

    def kernel_estimate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Return the RFF estimate of ``K(x, y)`` (the normalised feature inner product)."""
        fx = self.transform(np.atleast_2d(np.asarray(x, dtype=float)))
        fy = self.transform(np.atleast_2d(np.asarray(y, dtype=float)))
        return float((fx @ fy.T).item() / self.num_features)

    def parameter_word_count(self) -> int:
        """Words needed to broadcast the feature map (``Z`` and ``b``)."""
        return int(self.frequencies.size + self.phases.size)


def distributed_rff_cluster(
    raw_locals: Sequence[np.ndarray],
    features: RandomFourierFeatures,
    *,
    network: Optional[Network] = None,
    charge_broadcast: bool = True,
    name: str = "rff",
) -> LocalCluster:
    """Build the cluster whose implicit global matrix is the RFF expansion of the summed data.

    Each server locally computes ``M^t Z`` (projection by the shared
    frequency matrix); the phases ``b`` are added to the Central Processor's
    share so that ``sum_t (local)_{ij} = (M Z)_{ij} + b_j`` and the cluster's
    entrywise function ``sqrt(2) cos(.)`` yields the expansion.

    Parameters
    ----------
    raw_locals:
        The per-server shares ``M^t`` of the raw data (``n x m`` each).
    features:
        The shared feature map.  In a real deployment the CP broadcasts its
        parameters (or a seed); ``charge_broadcast`` charges the seed
        broadcast (a single word per server) to the network.
    """
    if len(raw_locals) < 1:
        raise ValueError("need at least one local matrix")
    locals_projected = []
    for t, raw in enumerate(raw_locals):
        arr = check_matrix(raw, "raw_locals[%d]" % t)
        projected = arr @ features.frequencies
        if t == 0:
            projected = projected + features.phases
        locals_projected.append(projected)
    cluster = LocalCluster(
        locals_projected,
        CosineFeatureFunction(),
        network=network,
        name=name,
    )
    if charge_broadcast:
        # Broadcasting the RFF seed costs one word per worker (the servers
        # regenerate Z and b locally from the seed).
        for server in range(1, cluster.num_servers):
            cluster.network.charge(0, server, 1, tag="rff:seed")
    return cluster


def rff_row_norm_concentration(expanded: np.ndarray) -> dict:
    """Quantify how concentrated the squared row norms of an RFF matrix are.

    Section VI-A argues every expanded row has squared norm ``Theta(d)``
    with high probability (each squared entry has mean 1), which is what
    justifies uniform row sampling.  Returns the min/mean/max squared row
    norm divided by ``d``.
    """
    arr = check_matrix(expanded, "expanded")
    norms = np.einsum("ij,ij->i", arr, arr) / arr.shape[1]
    return {
        "min_ratio": float(norms.min()),
        "mean_ratio": float(norms.mean()),
        "max_ratio": float(norms.max()),
        "std_ratio": float(norms.std()),
    }
