"""P-norm pooling workloads (the Caltech-101 / Scenes experiments).

The paper's methodology (Section VIII): densely extract SIFT descriptors,
quantise each patch against a 256-word codebook into a 1-of-256 code,
distribute the binary patch codes across servers, and have each server
locally pool the codes of the same image; the global feature matrix is then
obtained by pooling *across* servers with a P-norm (generalized mean) --
average pooling for P=1, square-root pooling for P=2, approximate max
pooling for P=5 and P=20.

The generator below produces synthetic patch codes with the same structure:
images are mixtures over a codebook with image-class-dependent topic
distributions, each patch is a 1-of-V indicator, and patches are assigned to
servers at random.  The resulting per-server pooled matrices are the raw
local matrices ``M^t`` of the softmax application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.distributed.cluster import LocalCluster
from repro.distributed.network import Network
from repro.functions.softmax import GeneralizedMeanFunction
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_rank


@dataclass
class PatchCodeDataset:
    """Synthetic 1-of-V patch codes grouped by image and assigned to servers.

    Attributes
    ----------
    local_counts:
        One ``num_images x codebook_size`` matrix per server: the count of
        each codeword among the server's patches of each image, i.e. the
        server's *locally pooled* (sum-pooled) codes.  These are the raw
        matrices ``M^t`` fed to the P-norm pooling application.
    codebook_size:
        Number of visual words ``V``.
    patches_per_image:
        Average number of patches per image.
    """

    local_counts: List[np.ndarray]
    codebook_size: int
    patches_per_image: int

    @property
    def num_servers(self) -> int:
        """Number of servers the patches were distributed over."""
        return len(self.local_counts)

    @property
    def num_images(self) -> int:
        """Number of images (rows of the pooled feature matrices)."""
        return int(self.local_counts[0].shape[0])

    def global_sum_pooled(self) -> np.ndarray:
        """Return the sum-pooled global counts (evaluation helper)."""
        return np.sum(self.local_counts, axis=0)


def _generate_patch_codes(
    num_images: int,
    codebook_size: int,
    num_classes: int,
    patches_per_image: int,
    num_servers: int,
    topic_concentration: float,
    seed: RandomState,
) -> PatchCodeDataset:
    """Shared generator behind the Caltech-like and Scenes-like datasets."""
    rng = ensure_rng(seed)
    # Each image class has a sparse distribution over the codebook (objects /
    # scene types reuse a characteristic subset of visual words).
    class_topics = rng.dirichlet(
        np.full(codebook_size, topic_concentration), size=num_classes
    )
    image_classes = rng.integers(0, num_classes, size=num_images)
    local_counts = [
        np.zeros((num_images, codebook_size), dtype=float) for _ in range(num_servers)
    ]
    for image in range(num_images):
        topic = class_topics[image_classes[image]]
        count = max(1, int(rng.poisson(patches_per_image)))
        words = rng.choice(codebook_size, size=count, p=topic)
        servers = rng.integers(0, num_servers, size=count)
        for word, server in zip(words, servers):
            local_counts[server][image, word] += 1.0
    return PatchCodeDataset(
        local_counts=local_counts,
        codebook_size=codebook_size,
        patches_per_image=patches_per_image,
    )


def caltech_like_patch_codes(
    num_images: int = 915,
    codebook_size: int = 256,
    *,
    num_servers: int = 50,
    num_classes: int = 101,
    patches_per_image: int = 60,
    seed: RandomState = None,
) -> PatchCodeDataset:
    """Return Caltech-101-like patch codes (object categories, 256-word codebook).

    The original matrix is 9145 x 256 pooled over 101 object categories with
    50 servers; the defaults keep the column count, class count and server
    count while scaling the number of images down by ~10x.
    """
    num_images = check_rank(num_images, None, "num_images")
    return _generate_patch_codes(
        num_images,
        codebook_size,
        num_classes,
        patches_per_image,
        num_servers,
        topic_concentration=0.05,
        seed=seed,
    )


def scenes_like_patch_codes(
    num_images: int = 897,
    codebook_size: int = 256,
    *,
    num_servers: int = 10,
    num_classes: int = 15,
    patches_per_image: int = 60,
    seed: RandomState = None,
) -> PatchCodeDataset:
    """Return Scenes-like patch codes (15 scene categories, 256-word codebook, 10 servers)."""
    num_images = check_rank(num_images, None, "num_images")
    return _generate_patch_codes(
        num_images,
        codebook_size,
        num_classes,
        patches_per_image,
        num_servers,
        topic_concentration=0.15,
        seed=seed,
    )


def pnorm_pooling_cluster(
    dataset: PatchCodeDataset,
    p: float,
    *,
    network: Optional[Network] = None,
    name: str = "",
) -> LocalCluster:
    """Build the softmax/GM_p cluster pooling ``dataset`` across servers with exponent ``p``.

    Each server's raw matrix ``M^t`` is its locally pooled counts; the
    cluster applies the local transform ``(1/s)|M^t|^p`` and the entrywise
    function ``x^{1/p}``, so the implicit global matrix is the P-norm pooled
    feature matrix (average pooling at ``p=1``, square-root pooling at
    ``p=2``, approximate max pooling at large ``p``).
    """
    function = GeneralizedMeanFunction(p)
    return function.build_cluster(
        dataset.local_counts,
        network=network,
        name=name or f"pnorm_pooling[p={p:g}]",
    )
