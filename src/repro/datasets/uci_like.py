"""Synthetic stand-ins for the UCI datasets used in the paper's evaluation.

The generators reproduce, at configurable (laptop) scale, the structural
features that matter for the algorithms:

* **Forest Cover** (581k x 54 in the original; 522k x 5000 after RFF):
  continuous cartographic variables forming a handful of cover-type
  clusters -- modelled as a Gaussian mixture with mild feature correlation.
* **KDDCUP99** (4.9M x 41; 50 RFF features in the paper): network-connection
  records with extreme class imbalance (most traffic is "normal"/"smurf")
  and heavy-tailed counter features -- modelled as an imbalanced mixture
  with log-normal heavy tails.
* **isolet** (1559 x 617): spoken-letter audio features with strong
  inter-feature correlation -- modelled as correlated Gaussian features with
  a moderately decaying spectrum (the clean matrix for the robust-PCA
  experiment).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import clustered_gaussian, low_rank_plus_noise
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_rank


def forest_cover_like(
    num_rows: int = 2000,
    num_features: int = 54,
    *,
    num_cover_types: int = 7,
    seed: RandomState = None,
) -> np.ndarray:
    """Return a Forest-Cover-like raw matrix (cluster structure, standardised features).

    The original dataset has 54 cartographic features and 7 cover types; the
    generator keeps both counts by default and standardises columns, which is
    the preprocessing regime under which Gaussian RFF expansions are used.
    """
    num_rows = check_rank(num_rows, None, "num_rows")
    num_features = check_rank(num_features, None, "num_features")
    rng = ensure_rng(seed)
    points = clustered_gaussian(
        num_rows,
        num_features,
        num_cover_types,
        cluster_spread=0.6,
        center_scale=2.0,
        seed=rng,
    )
    # A few binary "wilderness area" style columns, as in the original data.
    num_binary = max(1, num_features // 10)
    binary = (rng.random(size=(num_rows, num_binary)) < 0.3).astype(float)
    points[:, -num_binary:] = binary
    # Standardise (zero mean, unit variance) like the usual preprocessing.
    points -= points.mean(axis=0)
    scale = points.std(axis=0)
    scale[scale == 0] = 1.0
    return points / scale


def kddcup_like(
    num_rows: int = 3000,
    num_features: int = 41,
    *,
    normal_fraction: float = 0.8,
    num_attack_types: int = 4,
    seed: RandomState = None,
) -> np.ndarray:
    """Return a KDDCUP99-like raw matrix (imbalanced mixture, heavy-tailed counters).

    Most rows belong to one dominant cluster ("normal" / "smurf" traffic);
    a small fraction are spread over a few attack clusters, and several
    columns behave like heavy-tailed byte/packet counters.
    """
    num_rows = check_rank(num_rows, None, "num_rows")
    num_features = check_rank(num_features, None, "num_features")
    if not 0 < normal_fraction < 1:
        raise ValueError(f"normal_fraction must be in (0, 1), got {normal_fraction}")
    rng = ensure_rng(seed)
    centers = rng.normal(scale=2.5, size=(num_attack_types + 1, num_features))
    probabilities = np.concatenate(
        [
            [normal_fraction],
            np.full(num_attack_types, (1.0 - normal_fraction) / num_attack_types),
        ]
    )
    assignment = rng.choice(num_attack_types + 1, size=num_rows, p=probabilities)
    points = centers[assignment] + rng.normal(scale=0.4, size=(num_rows, num_features))
    # Heavy-tailed counter columns (src_bytes / dst_bytes style).
    num_counters = max(1, num_features // 8)
    counters = rng.lognormal(mean=0.0, sigma=2.0, size=(num_rows, num_counters))
    points[:, :num_counters] = np.log1p(counters)
    points -= points.mean(axis=0)
    scale = points.std(axis=0)
    scale[scale == 0] = 1.0
    return points / scale


def isolet_like(
    num_rows: int = 1559,
    num_features: int = 617,
    *,
    signal_rank: int = 40,
    noise_level: float = 0.25,
    seed: RandomState = None,
) -> np.ndarray:
    """Return an isolet-like feature matrix (correlated audio-style features).

    The original isolet matrix is 1559 x 617 with strongly correlated
    spectral features; a low-rank-plus-noise model with a moderate signal
    rank reproduces the spectrum shape that makes rank-3..15 approximations
    meaningful, which is what the robust PCA experiment sweeps.
    """
    return low_rank_plus_noise(
        num_rows,
        num_features,
        signal_rank,
        noise_level=noise_level,
        singular_value_decay=0.88,
        seed=seed,
    ) / np.sqrt(num_features)
