"""Outlier injection for the robust-PCA experiment (Section VIII, isolet)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_matrix, check_positive


def inject_outliers(
    matrix: np.ndarray,
    num_outliers: int = 50,
    *,
    magnitude: float = 1e4,
    relative: bool = False,
    seed: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Corrupt ``num_outliers`` random entries of ``matrix`` with huge values.

    Mirrors the paper's methodology: "we randomly changed values of 50
    entries of the feature matrix of isolet to be extremely large".

    Parameters
    ----------
    matrix:
        The clean matrix (not modified; a corrupted copy is returned).
    num_outliers:
        Number of entries to corrupt.
    magnitude:
        Outlier magnitude.  When ``relative`` is True, the magnitude is a
        multiple of the largest absolute entry of the clean matrix.
    seed:
        Randomness for positions and signs.

    Returns
    -------
    (corrupted, flat_positions)
        The corrupted matrix and the flattened indices of the corrupted
        entries (useful for tests asserting the outliers were neutralised).
    """
    arr = check_matrix(matrix, "matrix").copy()
    if num_outliers < 0:
        raise ValueError(f"num_outliers must be non-negative, got {num_outliers}")
    if num_outliers > arr.size:
        raise ValueError(
            f"cannot corrupt {num_outliers} entries of a matrix with {arr.size} entries"
        )
    magnitude = check_positive(magnitude, "magnitude")
    rng = ensure_rng(seed)
    positions = rng.choice(arr.size, size=num_outliers, replace=False)
    signs = rng.integers(0, 2, size=num_outliers) * 2 - 1
    value = magnitude * (np.max(np.abs(arr)) if relative else 1.0)
    arr.flat[positions] = signs * value
    return arr, positions
