"""Generic synthetic matrices with controlled spectral structure."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_positive, check_rank


def low_rank_plus_noise(
    num_rows: int,
    num_columns: int,
    rank: int,
    *,
    noise_level: float = 0.1,
    singular_value_decay: float = 0.8,
    seed: RandomState = None,
) -> np.ndarray:
    """Return ``U diag(s) V^T + noise`` with geometrically decaying singular values.

    Parameters
    ----------
    num_rows, num_columns:
        Shape of the matrix.
    rank:
        Number of dominant directions (the "signal" rank).
    noise_level:
        Standard deviation of the additive Gaussian noise, relative to the
        largest singular value scaled by ``1/sqrt(num_rows)``.
    singular_value_decay:
        Ratio between consecutive signal singular values (in ``(0, 1]``).
    """
    num_rows = check_rank(num_rows, None, "num_rows")
    num_columns = check_rank(num_columns, None, "num_columns")
    rank = check_rank(rank, min(num_rows, num_columns), "rank")
    if not 0 < singular_value_decay <= 1:
        raise ValueError(
            f"singular_value_decay must be in (0, 1], got {singular_value_decay}"
        )
    rng = ensure_rng(seed)
    u, _ = np.linalg.qr(rng.normal(size=(num_rows, rank)))
    v, _ = np.linalg.qr(rng.normal(size=(num_columns, rank)))
    singular_values = np.array(
        [singular_value_decay**i for i in range(rank)], dtype=float
    ) * float(np.sqrt(num_rows * num_columns))
    signal = (u * singular_values) @ v.T
    noise = rng.normal(scale=noise_level * singular_values[0] / np.sqrt(num_rows),
                       size=(num_rows, num_columns))
    return signal + noise


def power_law_rows(
    num_rows: int,
    num_columns: int,
    *,
    exponent: float = 1.5,
    seed: RandomState = None,
) -> np.ndarray:
    """Return a matrix whose row norms follow a power law.

    A stress test for norm-based row sampling: a few rows carry most of the
    Frobenius mass, so uniform sampling fails while ``l_2^2`` sampling
    succeeds -- the regime where the generalized sampler matters most.
    """
    num_rows = check_rank(num_rows, None, "num_rows")
    num_columns = check_rank(num_columns, None, "num_columns")
    exponent = check_positive(exponent, "exponent")
    rng = ensure_rng(seed)
    base = rng.normal(size=(num_rows, num_columns))
    scales = (np.arange(1, num_rows + 1, dtype=float)) ** (-exponent)
    rng.shuffle(scales)
    return base * scales[:, None] * num_rows


def clustered_gaussian(
    num_rows: int,
    num_columns: int,
    num_clusters: int,
    *,
    cluster_spread: float = 0.3,
    center_scale: float = 3.0,
    seed: RandomState = None,
) -> np.ndarray:
    """Return points drawn from a Gaussian mixture with ``num_clusters`` components.

    This is the structure of typical UCI classification datasets (Forest
    Cover, KDDCUP99): well-separated clusters whose kernel expansion has a
    rapidly decaying spectrum, making low-rank approximation of the feature
    matrix meaningful.
    """
    num_rows = check_rank(num_rows, None, "num_rows")
    num_columns = check_rank(num_columns, None, "num_columns")
    num_clusters = check_rank(num_clusters, None, "num_clusters")
    cluster_spread = check_positive(cluster_spread, "cluster_spread")
    center_scale = check_positive(center_scale, "center_scale")
    rng = ensure_rng(seed)
    centers = rng.normal(scale=center_scale, size=(num_clusters, num_columns))
    assignment = rng.integers(0, num_clusters, size=num_rows)
    points = centers[assignment] + rng.normal(
        scale=cluster_spread, size=(num_rows, num_columns)
    )
    return points
