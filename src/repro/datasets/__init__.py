"""Synthetic dataset generators standing in for the paper's evaluation data.

The paper evaluates on five datasets: Forest Cover and KDDCUP99 (expanded
into Gaussian random Fourier features), Caltech-101 and Scenes (SIFT
patches, a 256-word codebook and P-norm pooling) and isolet (robust PCA
with 50 corrupted entries).  The raw datasets are not bundled here; instead
each generator produces a synthetic matrix with the structural properties
that drive the algorithms' behaviour (spectrum shape, row-norm profile,
sparsity, and outlier pattern) at laptop scale.  The substitutions are
documented in DESIGN.md.
"""

from repro.datasets.noise import inject_outliers
from repro.datasets.pooling import (
    PatchCodeDataset,
    caltech_like_patch_codes,
    pnorm_pooling_cluster,
    scenes_like_patch_codes,
)
from repro.datasets.synthetic import (
    clustered_gaussian,
    low_rank_plus_noise,
    power_law_rows,
)
from repro.datasets.uci_like import (
    forest_cover_like,
    isolet_like,
    kddcup_like,
)

__all__ = [
    "low_rank_plus_noise",
    "power_law_rows",
    "clustered_gaussian",
    "forest_cover_like",
    "kddcup_like",
    "isolet_like",
    "inject_outliers",
    "PatchCodeDataset",
    "caltech_like_patch_codes",
    "scenes_like_patch_codes",
    "pnorm_pooling_cluster",
]
