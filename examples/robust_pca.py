"""Robust PCA via M-estimator psi-functions (Section VI-C).

A clean feature matrix is corrupted with a few dozen enormous entries and
arbitrarily partitioned across servers, so no server can recognise the
corruption locally.  Applying the Huber psi-function entrywise to the summed
matrix clips the corrupted entries, and the distributed PCA framework with
the generalized Z-sampler recovers a subspace close to the clean one --
while PCA of the raw corrupted matrix is destroyed by the outliers.

Run with::

    python examples/robust_pca.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedPCA, GeneralizedZRowSampler, HuberPsi, LocalCluster
from repro.datasets import inject_outliers, isolet_like
from repro.distributed import entrywise_partition
from repro.sketch import ZSamplerConfig
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams
from repro.utils.linalg import best_rank_k, frobenius_norm_squared


def subspace_quality(clean: np.ndarray, projection: np.ndarray, k: int) -> float:
    """Fraction of the clean matrix's best-rank-k energy captured by ``projection``."""
    captured = frobenius_norm_squared(clean @ projection)
    optimal = frobenius_norm_squared(best_rank_k(clean, k))
    return captured / optimal


def main() -> None:
    k = 9
    clean = isolet_like(num_rows=600, num_features=200, seed=0)
    corrupted, positions = inject_outliers(clean, num_outliers=50, magnitude=1e4, seed=1)
    print(f"clean matrix {clean.shape}; {positions.size} entries corrupted to ~1e4\n")

    num_servers = 10
    locals_ = entrywise_partition(corrupted, num_servers, seed=2)

    sampler_config = ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
        max_levels=8,
    )

    # (a) Naive PCA of the corrupted matrix (identity f): outliers dominate.
    naive_cluster = LocalCluster(locals_, name="naive")
    naive = DistributedPCA(k=k, num_samples=200,
                           sampler=GeneralizedZRowSampler(HuberPsi(1e9), sampler_config),
                           seed=3).fit(naive_cluster)
    print("naive PCA of the corrupted matrix:")
    print(f"   clean-energy captured : {subspace_quality(clean, naive.projection, k):.3f}")

    # (b) Robust PCA: Huber psi clips the corrupted entries before PCA.
    threshold = 3.0 * float(np.std(clean))
    robust_cluster = LocalCluster(locals_, HuberPsi(threshold), name="huber")
    robust = DistributedPCA(k=k, num_samples=200,
                            sampler=GeneralizedZRowSampler(config=sampler_config),
                            seed=3).fit(robust_cluster)
    report = robust.evaluate(robust_cluster.materialize_global())
    print("\nrobust PCA with the Huber psi-function "
          f"(threshold {threshold:.2f}):")
    print(f"   clean-energy captured : {subspace_quality(clean, robust.projection, k):.3f}")
    print(f"   additive error (vs psi(A)) : {report['additive_error']:.4f}")
    print(f"   communication ratio        : {robust.communication_ratio:.3f}")


if __name__ == "__main__":
    main()
