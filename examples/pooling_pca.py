"""Approximate PCA of P-norm pooled image features (Section VI-B).

Patches of every image are quantised to 1-of-256 codes and scattered across
servers; each server pools its own patches per image, and the global feature
matrix is the generalized mean (softmax) of the per-server pools -- average
pooling for P=1, square-root pooling for P=2, and an approximation of max
pooling for large P.  The softmax fits the generalized partition model
(each server locally raises its counts to the P-th power), and rows are
sampled with the generalized Z-sampler (``l_{2/P}`` sampling on the sum).

Run with::

    python examples/pooling_pca.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedPCA, softmax_row_sampler
from repro.datasets import caltech_like_patch_codes, pnorm_pooling_cluster
from repro.functions import entrywise_max, max_aggregation_error
from repro.sketch import ZSamplerConfig
from repro.sketch.z_heavy_hitters import ZHeavyHittersParams


def main() -> None:
    dataset = caltech_like_patch_codes(num_images=300, num_servers=10, seed=0)
    print(f"patch codes: {dataset.num_images} images, codebook {dataset.codebook_size}, "
          f"{dataset.num_servers} servers\n")

    sampler_config = ZSamplerConfig(
        hh_params=ZHeavyHittersParams(b=8, repetitions=1, num_buckets=8),
        max_levels=8,
    )

    for p in (1.0, 2.0, 5.0, 20.0):
        cluster = pnorm_pooling_cluster(dataset, p)
        pooled = cluster.materialize_global()

        # How close is GM_p pooling to true max pooling across servers?
        gap = max_aggregation_error(dataset.local_counts, p)
        true_max = entrywise_max(dataset.local_counts)

        result = DistributedPCA(
            k=9,
            num_samples=120,
            sampler=softmax_row_sampler(p, sampler_config),
            seed=3,
        ).fit(cluster)
        report = result.evaluate(pooled)

        print(f"P = {p:>4g}   (pooled matrix {pooled.shape}, "
              f"max-pooling gap {gap['frobenius_relative_gap']:.3f})")
        print(f"   additive error      : {report['additive_error']:.4f}")
        print(f"   relative error      : {report['relative_error']:.4f}")
        print(f"   communication ratio : {result.communication_ratio:.3f}")
        if p >= 20:
            # For large P the pooled matrix essentially equals the entrywise max.
            rel_gap = np.linalg.norm(pooled - true_max) / np.linalg.norm(true_max)
            print(f"   ||GM_20 - max||_F / ||max||_F = {rel_gap:.4f}")
        print()


if __name__ == "__main__":
    main()
