"""Communication / accuracy trade-off and the lower-bound reductions.

Part 1 sweeps the number of sampled rows ``r`` and shows how the measured
additive error tracks the ``k^2/r`` prediction while the communication ratio
grows linearly -- the trade-off at the heart of Theorem 1.

Part 2 runs the constructive lower-bound reductions of Section VII: an exact
relative-error rank-``k`` solver decides Gap-Hamming-Distance, 2-DISJ and the
``L_infinity`` promise problem through the paper's gadget matrices, which is
why relative-error protocols cannot be communication-cheap.

Run with::

    python examples/communication_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedPCA, LocalCluster, arbitrary_partition, predicted_additive_error
from repro.lowerbounds import (
    DisjointnessReduction,
    GapHammingReduction,
    LInfinityReduction,
    theorem4_bound_bits,
    theorem6_bound_bits,
    theorem8_bound_bits,
)


def main() -> None:
    rng = np.random.default_rng(0)
    data = rng.normal(size=(800, 24)) @ rng.normal(size=(24, 64)) + 0.2 * rng.normal(size=(800, 64))
    cluster = LocalCluster(arbitrary_partition(data, 8, seed=1), name="tradeoff")
    global_matrix = cluster.materialize_global()
    k = 6

    print("Part 1: accuracy vs communication (k = 6)")
    print(f"{'rows r':>8}{'predicted k^2/r':>18}{'additive error':>18}{'comm ratio':>14}")
    for num_samples in (40, 80, 160, 320, 640):
        result = DistributedPCA(k=k, num_samples=num_samples, seed=3).fit(cluster)
        report = result.evaluate(global_matrix)
        print(f"{num_samples:>8}{predicted_additive_error(k, num_samples):>18.4f}"
              f"{report['additive_error']:>18.4f}{result.communication_ratio:>14.3f}")

    print("\nPart 2: lower-bound reductions (decision accuracy of a relative-error solver)")
    ghd = GapHammingReduction(epsilon=0.1, k=2)
    print(f"  Gap-Hamming  (Theorem 8): accuracy {ghd.verify(trials=20, seed=5):.2f}, "
          f"lower bound ~ {theorem8_bound_bits(0.1):.0f} bits")
    disj = DisjointnessReduction(num_rows=16, num_cols=8, k=3, aggregation="huber")
    print(f"  2-DISJ/Huber (Theorem 6): accuracy {disj.verify(trials=10, seed=6):.2f}, "
          f"lower bound ~ {theorem6_bound_bits(16, 8):.0f} bits")
    linf = LInfinityReduction(num_rows=16, num_cols=8, k=3, p=2.0)
    print(f"  L-infinity   (Theorem 4): accuracy {linf.verify(trials=10, seed=7):.2f}, "
          f"lower bound ~ {theorem4_bound_bits(16, 8, 2.0, 0.1):.1f} bits")


if __name__ == "__main__":
    main()
