"""Quickstart: distributed additive-error PCA of an implicitly summed matrix.

Builds a small cluster of servers that jointly hold a low-rank matrix in the
arbitrary (linear) partition model, runs Algorithm 1 with the exact-norm and
uniform samplers, and prints the achieved errors together with the exact
communication bill.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DistributedPCA,
    ExactNormSampler,
    LocalCluster,
    UniformRowSampler,
    arbitrary_partition,
    predicted_additive_error,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # A 600 x 60 matrix with a strong rank-8 signal plus noise.
    signal = rng.normal(size=(600, 8)) @ rng.normal(size=(8, 60))
    data = signal + 0.15 * rng.normal(size=(600, 60))

    # Split it additively across 6 servers: no server's local matrix looks
    # anything like the global one.
    num_servers = 6
    cluster = LocalCluster(
        arbitrary_partition(data, num_servers, seed=1), name="quickstart"
    )
    print(f"cluster: {cluster.num_servers} servers, global shape {cluster.shape}")
    print(f"total local data: {cluster.total_input_words()} words\n")

    k = 8
    num_samples = 150
    global_matrix = cluster.materialize_global()  # evaluation only

    for sampler in (ExactNormSampler(), UniformRowSampler()):
        protocol = DistributedPCA(k=k, num_samples=num_samples, sampler=sampler, seed=3)
        result = protocol.fit(cluster)
        report = result.evaluate(global_matrix)
        print(f"sampler = {sampler.name}")
        print(f"  rank of projection     : {result.rank}")
        print(f"  additive error         : {report['additive_error']:.4f}")
        print(f"  relative error         : {report['relative_error']:.4f}")
        print(f"  predicted additive err : {predicted_additive_error(k, num_samples):.4f}")
        print(f"  communication          : {result.communication_words} words "
              f"(ratio {result.communication_ratio:.3f} of the input)\n")

    # The learned basis can be used exactly like a PCA basis: project new
    # points into the k-dimensional subspace.
    protocol = DistributedPCA(k=k, num_samples=num_samples, seed=4)
    result = protocol.fit(cluster)
    embedded = result.reduce(global_matrix[:5])
    print("first five rows embedded into the learned k-dimensional space:")
    print(np.round(embedded, 3))


if __name__ == "__main__":
    main()
