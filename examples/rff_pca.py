"""Distributed PCA of Gaussian random Fourier features (Section VI-A).

The raw data is row-partitioned across servers; the coordinator broadcasts a
random feature map (frequencies + phases), every server projects its rows
locally, and the *implicit* global matrix is ``sqrt(2) cos(M Z + b)`` -- a
non-linear function of the summed local matrices that no prior distributed
PCA model covers.  Because every expanded row has squared norm close to the
number of features, uniform row sampling is a valid sampler and the whole
protocol ships only ``r`` rows.

Run with::

    python examples/rff_pca.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedPCA, RandomFourierFeatures, distributed_rff_cluster
from repro.datasets import forest_cover_like
from repro.distributed import row_partition
from repro.kernels import gaussian_kernel_matrix
from repro.kernels.rff import rff_row_norm_concentration


def main() -> None:
    rng = np.random.default_rng(0)

    # Forest-Cover-like raw data, row-partitioned across 10 servers.
    raw = forest_cover_like(num_rows=1500, seed=rng)
    num_servers = 10
    raw_locals = [np.asarray(m.todense()) for m in row_partition(raw, num_servers, seed=1)]

    # The shared Rahimi-Recht feature map (d = O(log n) features suffice).
    features = RandomFourierFeatures(raw.shape[1], num_features=96, bandwidth=2.0, seed=2)
    cluster = distributed_rff_cluster(raw_locals, features, name="forest-cover RFF")
    print(f"implicit RFF matrix: {cluster.shape}, servers: {cluster.num_servers}")

    # Check the two facts the application relies on.
    expanded = cluster.materialize_global()
    concentration = rff_row_norm_concentration(expanded)
    print("row-norm concentration (squared norm / d):",
          {k: round(v, 3) for k, v in concentration.items()})
    sample_idx = rng.choice(raw.shape[0], size=30, replace=False)
    exact_kernel = gaussian_kernel_matrix(raw[sample_idx], bandwidth=2.0)
    rff_kernel = expanded[sample_idx] @ expanded[sample_idx].T / features.num_features
    print(f"kernel approximation error (mean abs): "
          f"{np.mean(np.abs(exact_kernel - rff_kernel)):.3f}\n")

    # Distributed PCA of the feature expansion for several ranks.
    for k in (3, 9, 15):
        result = DistributedPCA(k=k, num_samples=250, seed=5).fit(cluster)
        report = result.evaluate(expanded)
        print(f"k={k:>2}  additive error={report['additive_error']:.4f}  "
              f"relative error={report['relative_error']:.4f}  "
              f"communication ratio={result.communication_ratio:.3f}")


if __name__ == "__main__":
    main()
